//! Binary prefix trie.
//!
//! The overlap-detection index stores every rule under its destination
//! prefix in a binary trie. For prefixes, *overlap implies containment one
//! way or the other*, so all prefixes overlapping a query `q` are found on
//! the root-to-`q` path (ancestors of `q`) plus in the subtree rooted at `q`
//! (descendants). This turns the O(n) scan of Algorithm 1's overlap
//! detection into an output-sensitive walk — one of the "efficient data
//! structures" §3 calls for.

use crate::prefix::Ipv4Prefix;

#[derive(Debug)]
struct Node<T> {
    items: Vec<T>,
    children: [Option<usize>; 2],
    /// Number of items stored in this node's entire subtree (including the
    /// node itself); lets walks skip empty subtrees.
    subtree_items: usize,
}

impl<T> Node<T> {
    fn new() -> Self {
        Node {
            items: Vec::new(),
            children: [None, None],
            subtree_items: 0,
        }
    }
}

/// A binary trie mapping [`Ipv4Prefix`]es to collections of items.
///
/// Multiple items may live under the same prefix (rules with different
/// priorities or actions frequently share a match).
#[derive(Debug)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::new()],
            len: 0,
        }
    }

    /// Total number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no items are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every item.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.nodes.push(Node::new());
        self.len = 0;
    }

    /// The bit of `addr` at depth `depth` (0 = most significant).
    fn bit(addr: u32, depth: u8) -> usize {
        ((addr >> (31 - depth)) & 1) as usize
    }

    /// Walks (creating nodes as needed) to the node for `prefix`, returning
    /// its index. Updates `subtree_items` along the way by `delta`.
    fn walk_mut(&mut self, prefix: Ipv4Prefix, delta: isize) -> usize {
        let mut idx = 0;
        for depth in 0..prefix.len() {
            self.bump(idx, delta);
            let b = Self::bit(prefix.addr(), depth);
            idx = match self.nodes[idx].children[b] {
                Some(c) => c,
                None => {
                    let c = self.nodes.len();
                    self.nodes.push(Node::new());
                    self.nodes[idx].children[b] = Some(c);
                    c
                }
            };
        }
        self.bump(idx, delta);
        idx
    }

    fn bump(&mut self, idx: usize, delta: isize) {
        let n = &mut self.nodes[idx];
        n.subtree_items = (n.subtree_items as isize + delta) as usize;
    }

    /// Inserts `item` under `prefix`.
    pub fn insert(&mut self, prefix: Ipv4Prefix, item: T) {
        let idx = self.walk_mut(prefix, 1);
        self.nodes[idx].items.push(item);
        self.len += 1;
    }

    /// Walks to the node for `prefix` without creating nodes.
    fn walk(&self, prefix: Ipv4Prefix) -> Option<usize> {
        let mut idx = 0;
        for depth in 0..prefix.len() {
            let b = Self::bit(prefix.addr(), depth);
            idx = self.nodes[idx].children[b]?;
        }
        Some(idx)
    }

    /// Visits every item stored exactly at `prefix`.
    pub fn items_at(&self, prefix: Ipv4Prefix) -> &[T] {
        match self.walk(prefix) {
            Some(idx) => &self.nodes[idx].items,
            None => &[],
        }
    }

    /// Visits every item whose prefix *contains* the query (ancestors,
    /// including the query node itself).
    pub fn for_each_ancestor<'a>(&'a self, prefix: Ipv4Prefix, mut f: impl FnMut(&'a T)) {
        let mut idx = 0;
        for depth in 0..prefix.len() {
            for item in &self.nodes[idx].items {
                f(item);
            }
            let b = Self::bit(prefix.addr(), depth);
            match self.nodes[idx].children[b] {
                Some(c) => idx = c,
                None => return,
            }
        }
        for item in &self.nodes[idx].items {
            f(item);
        }
    }

    /// Visits every item whose prefix is *contained in* the query
    /// (descendants, including the query node itself).
    pub fn for_each_descendant<'a>(&'a self, prefix: Ipv4Prefix, mut f: impl FnMut(&'a T)) {
        let Some(start) = self.walk(prefix) else {
            return;
        };
        let mut stack = vec![start];
        while let Some(idx) = stack.pop() {
            let node = &self.nodes[idx];
            if node.subtree_items == 0 {
                continue;
            }
            for item in &node.items {
                f(item);
            }
            for child in node.children.into_iter().flatten() {
                stack.push(child);
            }
        }
    }

    /// Visits every item whose prefix overlaps the query. For prefixes this
    /// is exactly ancestors ∪ descendants; the query node itself is visited
    /// once.
    pub fn for_each_overlapping<'a>(&'a self, prefix: Ipv4Prefix, mut f: impl FnMut(&'a T)) {
        // Ancestors, excluding the query node (handled by the descendant
        // walk so items at the query node are reported exactly once).
        let mut idx = 0;
        for depth in 0..prefix.len() {
            for item in &self.nodes[idx].items {
                f(item);
            }
            let b = Self::bit(prefix.addr(), depth);
            match self.nodes[idx].children[b] {
                Some(c) => idx = c,
                None => return,
            }
        }
        self.for_each_descendant(prefix, f);
    }

    /// Collects overlapping items into a vector (convenience wrapper).
    pub fn overlapping(&self, prefix: Ipv4Prefix) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_overlapping(prefix, |t| out.push(t));
        // Rebind to drop the closure borrow.
        out
    }
}

impl<T: PartialEq> PrefixTrie<T> {
    /// Removes one occurrence of `item` stored under `prefix`. Returns
    /// `true` when found. Empty nodes are left in place (the trie is an
    /// index over a bounded TCAM; node reclamation isn't worth the
    /// complexity — `clear` releases everything).
    pub fn remove(&mut self, prefix: Ipv4Prefix, item: &T) -> bool {
        let Some(idx) = self.walk(prefix) else {
            return false;
        };
        let node = &mut self.nodes[idx];
        let Some(pos) = node.items.iter().position(|i| i == item) else {
            return false;
        };
        node.items.swap_remove(pos);
        self.len -= 1;
        // Fix up subtree counters along the path.
        self.walk_mut(prefix, -1);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn insert_and_query_at() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1u32);
        t.insert(p("10.0.0.0/8"), 2);
        t.insert(p("10.1.0.0/16"), 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.items_at(p("10.0.0.0/8")), &[1, 2]);
        assert_eq!(t.items_at(p("10.1.0.0/16")), &[3]);
        assert!(t.items_at(p("10.2.0.0/16")).is_empty());
    }

    #[test]
    fn overlapping_finds_ancestors_and_descendants() {
        let mut t = PrefixTrie::new();
        t.insert(Ipv4Prefix::DEFAULT, "default");
        t.insert(p("10.0.0.0/8"), "ten8");
        t.insert(p("10.1.0.0/16"), "ten1-16");
        t.insert(p("10.1.2.0/24"), "ten12-24");
        t.insert(p("11.0.0.0/8"), "eleven");

        let mut got: Vec<&str> = t
            .overlapping(p("10.1.0.0/16"))
            .into_iter()
            .copied()
            .collect();
        got.sort();
        assert_eq!(got, vec!["default", "ten1-16", "ten12-24", "ten8"]);

        let got2: Vec<&str> = t
            .overlapping(p("12.0.0.0/8"))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(got2, vec!["default"]);
    }

    #[test]
    fn query_node_items_reported_once() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 42u32);
        let hits = t.overlapping(p("10.0.0.0/8"));
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn remove_works_and_fixes_counters() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 1u32);
        t.insert(p("10.1.0.0/16"), 2);
        assert!(t.remove(p("10.0.0.0/8"), &1));
        assert!(!t.remove(p("10.0.0.0/8"), &1));
        assert_eq!(t.len(), 1);
        let got: Vec<u32> = t
            .overlapping(p("10.0.0.0/8"))
            .into_iter()
            .copied()
            .collect();
        assert_eq!(got, vec![2]);
    }

    #[test]
    fn ancestor_descendant_split() {
        let mut t = PrefixTrie::new();
        t.insert(p("10.0.0.0/8"), 'a');
        t.insert(p("10.1.0.0/16"), 'b');
        t.insert(p("10.1.2.0/24"), 'c');

        let mut anc = Vec::new();
        t.for_each_ancestor(p("10.1.0.0/16"), |x| anc.push(*x));
        assert_eq!(anc, vec!['a', 'b']);

        let mut desc = Vec::new();
        t.for_each_descendant(p("10.1.0.0/16"), |x| desc.push(*x));
        desc.sort();
        assert_eq!(desc, vec!['b', 'c']);
    }

    #[test]
    fn clear_resets() {
        let mut t = PrefixTrie::new();
        for i in 0..100u32 {
            t.insert(Ipv4Prefix::new(i << 8, 24), i);
        }
        assert_eq!(t.len(), 100);
        t.clear();
        assert!(t.is_empty());
        assert!(t.overlapping(Ipv4Prefix::DEFAULT).is_empty());
    }

    #[test]
    fn dense_random_consistency_with_naive_scan() {
        use std::collections::HashSet;
        let mut t = PrefixTrie::new();
        let mut all: Vec<(Ipv4Prefix, u32)> = Vec::new();
        // Deterministic pseudo-random prefixes.
        let mut x: u32 = 0x9e3779b9;
        for i in 0..500u32 {
            x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let len = (x % 25) as u8 + 8;
            let pre = Ipv4Prefix::new(x, len);
            t.insert(pre, i);
            all.push((pre, i));
        }
        for &(q, _) in all.iter().step_by(37) {
            let via_trie: HashSet<u32> = t.overlapping(q).into_iter().copied().collect();
            let via_scan: HashSet<u32> = all
                .iter()
                .filter(|(p, _)| p.overlaps(&q))
                .map(|&(_, i)| i)
                .collect();
            assert_eq!(via_trie, via_scan, "query {q}");
        }
    }
}
