//! Overlap detection index.
//!
//! Algorithm 1 (`PartitionNewRule`) needs, for every incoming rule, the set
//! of *higher-priority* main-table rules whose match regions overlap the new
//! rule. [`OverlapIndex`] answers that query via a destination-prefix trie
//! (the coarse filter) followed by an exact ternary check on the full key
//! (the fine filter).
//!
//! Rules whose destination bits are not prefix shaped (possible only for
//! hand-crafted ternary keys; every [`crate::fields::FlowMatch`]
//! and every partition Hermes itself produces is prefix shaped in the
//! destination field) fall back to a linear side list so correctness never
//! depends on the fast path.

use crate::fields::FlowMatch;
use crate::key::TernaryKey;
use crate::prefix::Ipv4Prefix;
use crate::rule::{Priority, Rule, RuleId};
use std::collections::BTreeMap;

use crate::trie::PrefixTrie;

/// An index over a set of rules supporting fast "which rules overlap this
/// key?" queries.
#[derive(Debug, Default)]
pub struct OverlapIndex {
    trie: PrefixTrie<Rule>,
    /// Rules whose destination mask is non-contiguous.
    fallback: Vec<Rule>,
    /// Locator for removal: id → (dst prefix or None for fallback).
    by_id: BTreeMap<RuleId, Option<Ipv4Prefix>>,
}

impl OverlapIndex {
    /// An empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of indexed rules.
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// `true` when no rules are indexed.
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Indexes a rule. A rule id may be indexed only once; re-inserting an
    /// id replaces the previous entry.
    pub fn insert(&mut self, rule: Rule) {
        if self.by_id.contains_key(&rule.id) {
            self.remove(rule.id);
        }
        match FlowMatch::dst_prefix_of_key(&rule.key) {
            Some(pre) => {
                self.trie.insert(pre, rule);
                self.by_id.insert(rule.id, Some(pre));
            }
            None => {
                self.fallback.push(rule);
                self.by_id.insert(rule.id, None);
            }
        }
    }

    /// Removes a rule by id. Returns the removed rule if present.
    pub fn remove(&mut self, id: RuleId) -> Option<Rule> {
        match self.by_id.remove(&id)? {
            Some(pre) => {
                let rule = *self.trie.items_at(pre).iter().find(|r| r.id == id)?;
                self.trie.remove(pre, &rule);
                Some(rule)
            }
            None => {
                let pos = self.fallback.iter().position(|r| r.id == id)?;
                Some(self.fallback.swap_remove(pos))
            }
        }
    }

    /// Looks up a rule by id.
    pub fn get(&self, id: RuleId) -> Option<Rule> {
        match self.by_id.get(&id)? {
            Some(pre) => self
                .trie
                .items_at(*pre)
                .iter()
                .find(|r| r.id == id)
                .copied(),
            None => self.fallback.iter().find(|r| r.id == id).copied(),
        }
    }

    /// `true` when the id is indexed.
    pub fn contains(&self, id: RuleId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Removes every rule.
    pub fn clear(&mut self) {
        self.trie.clear();
        self.fallback.clear();
        self.by_id.clear();
    }

    /// All rules overlapping `key` (in no particular order).
    pub fn overlapping(&self, key: &TernaryKey) -> Vec<Rule> {
        let mut out = Vec::new();
        self.for_each_overlapping(key, |r| out.push(*r));
        out
    }

    /// All rules overlapping `key` with priority *strictly above* `below`
    /// — exactly the `O` set of Algorithm 1 line 3.
    pub fn overlapping_above(&self, key: &TernaryKey, below: Priority) -> Vec<Rule> {
        let mut out = Vec::new();
        self.for_each_overlapping(key, |r| {
            if r.priority > below {
                out.push(*r);
            }
        });
        out
    }

    /// Visits each overlapping rule.
    pub fn for_each_overlapping(&self, key: &TernaryKey, mut f: impl FnMut(&Rule)) {
        match FlowMatch::dst_prefix_of_key(key) {
            Some(pre) => {
                self.trie.for_each_overlapping(pre, |r| {
                    if r.key.overlaps(key) {
                        f(r);
                    }
                });
            }
            None => {
                // Non-prefix query: the trie cannot prune, walk everything.
                self.trie.for_each_descendant(Ipv4Prefix::DEFAULT, |r| {
                    if r.key.overlaps(key) {
                        f(r);
                    }
                });
            }
        }
        for r in &self.fallback {
            if r.key.overlaps(key) {
                f(r);
            }
        }
    }

    /// Iterates over all indexed rules (order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = Rule> + '_ {
        let mut all = Vec::with_capacity(self.len());
        self.trie
            .for_each_descendant(Ipv4Prefix::DEFAULT, |r| all.push(*r));
        all.extend(self.fallback.iter().copied());
        all.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Action;

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        Rule::new(id, p(pfx).to_key(), Priority(prio), Action::Forward(1))
    }

    #[test]
    fn insert_get_remove() {
        let mut idx = OverlapIndex::new();
        let r = rule(1, "10.0.0.0/8", 5);
        idx.insert(r);
        assert_eq!(idx.len(), 1);
        assert!(idx.contains(RuleId(1)));
        assert_eq!(idx.get(RuleId(1)), Some(r));
        assert_eq!(idx.remove(RuleId(1)), Some(r));
        assert!(idx.is_empty());
        assert_eq!(idx.remove(RuleId(1)), None);
    }

    #[test]
    fn reinsert_replaces() {
        let mut idx = OverlapIndex::new();
        idx.insert(rule(1, "10.0.0.0/8", 5));
        idx.insert(rule(1, "11.0.0.0/8", 9));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(RuleId(1)).unwrap().priority, Priority(9));
    }

    #[test]
    fn overlapping_above_filters_priority() {
        let mut idx = OverlapIndex::new();
        idx.insert(rule(1, "10.0.0.0/8", 10));
        idx.insert(rule(2, "10.1.0.0/16", 3));
        idx.insert(rule(3, "11.0.0.0/8", 10));
        let query = p("10.1.2.0/24").to_key();
        let hits = idx.overlapping_above(&query, Priority(5));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, RuleId(1));
        let all = idx.overlapping(&query);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn multi_field_keys_fine_filter() {
        let mut idx = OverlapIndex::new();
        // Same destination, different protocol: the trie's coarse filter
        // returns both but the fine ternary check must reject the TCP rule.
        let tcp = Rule::new(
            1,
            FlowMatch::dst_prefix(p("10.0.0.0/8"))
                .with_proto(6)
                .to_key(),
            Priority(5),
            Action::Drop,
        );
        let udp_query = FlowMatch::dst_prefix(p("10.0.0.0/8"))
            .with_proto(17)
            .to_key();
        idx.insert(tcp);
        assert!(idx.overlapping(&udp_query).is_empty());
        let any_query = p("10.0.0.0/8").to_key();
        assert_eq!(idx.overlapping(&any_query).len(), 1);
    }

    #[test]
    fn fallback_handles_non_prefix_destinations() {
        let mut idx = OverlapIndex::new();
        // A key with a non-contiguous destination mask (odd bits).
        let weird = Rule::new(
            1,
            TernaryKey::new(0, 0b101u128 << 96),
            Priority(1),
            Action::Drop,
        );
        idx.insert(weird);
        assert_eq!(idx.len(), 1);
        let hits = idx.overlapping(&TernaryKey::ANY);
        assert_eq!(hits.len(), 1);
        assert_eq!(idx.remove(RuleId(1)).unwrap().id, RuleId(1));
    }

    #[test]
    fn agrees_with_naive_scan_on_random_rules() {
        use hermes_util::rng::{Rng, SeedableRng};
        let mut rng = hermes_util::rng::rngs::StdRng::seed_from_u64(7);
        let mut idx = OverlapIndex::new();
        let mut all = Vec::new();
        for i in 0..400u64 {
            let len = rng.gen_range(8..=28);
            let pre = Ipv4Prefix::new(rng.gen(), len);
            let mut m = FlowMatch::dst_prefix(pre);
            if rng.gen_bool(0.3) {
                m = m.with_proto(if rng.gen_bool(0.5) { 6 } else { 17 });
            }
            let r = Rule::new(i, m.to_key(), Priority(rng.gen_range(1..100)), Action::Drop);
            idx.insert(r);
            all.push(r);
        }
        for q in all.iter().step_by(23) {
            let mut via_idx: Vec<u64> = idx.overlapping(&q.key).iter().map(|r| r.id.0).collect();
            let mut via_scan: Vec<u64> = all
                .iter()
                .filter(|r| r.key.overlaps(&q.key))
                .map(|r| r.id.0)
                .collect();
            via_idx.sort_unstable();
            via_scan.sort_unstable();
            assert_eq!(via_idx, via_scan);
        }
    }

    #[test]
    fn iter_returns_everything() {
        let mut idx = OverlapIndex::new();
        for i in 0..10u64 {
            idx.insert(rule(i, "10.0.0.0/8", (i + 1) as u32));
        }
        let mut ids: Vec<u64> = idx.iter().map(|r| r.id.0).collect();
        ids.sort_unstable();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }
}
