//! Rule-set minimization (the paper's "ACL optimization functions" \[59\]).
//!
//! Two distinct uses inside Hermes:
//!
//! 1. **Partition minimization** (Algorithm 1, step iii): after a new rule
//!    is cut against the main table the resulting pieces share one action
//!    and priority, so adjacent pieces can be re-merged — fewer shadow-table
//!    entries means fewer TCAM writes.
//! 2. **Migration optimization** (§5.2, step 2): before rules are migrated
//!    into the main table the Rule Manager rewrites the combined rule set to
//!    minimize its size — sibling merges, duplicate elimination and removal
//!    of entries fully covered by higher-priority entries.
//!
//! Every transformation here is *semantics preserving*: the optimized set
//! classifies every packet identically to the input set. The property tests
//! in `tests/` check this against a brute-force oracle.

use crate::key::TernaryKey;
use crate::rule::Rule;
use std::collections::BTreeMap;

/// Merges a set of ternary keys (assumed to share action and priority) into
/// a minimal-or-smaller equivalent set by repeated pairwise adjacency
/// merging (Quine–McCluskey style) until fixpoint.
///
/// The keys need not be disjoint; containment collapses too. Complexity is
/// O(n² · rounds) which is fine for partition sets (bounded by the key
/// width, 128).
/// ```
/// use hermes_rules::merge::minimize_keys;
/// use hermes_rules::prelude::*;
///
/// // Four sibling /26 blocks collapse to their common /24.
/// let keys: Vec<TernaryKey> = (0..4u32)
///     .map(|i| Ipv4Prefix::new(0x0a000000 | (i << 6), 26).to_key())
///     .collect();
/// let merged = minimize_keys(keys);
/// assert_eq!(merged, vec![Ipv4Prefix::new(0x0a000000, 24).to_key()]);
/// ```
pub fn minimize_keys(mut keys: Vec<TernaryKey>) -> Vec<TernaryKey> {
    keys.sort_by_key(|k| std::cmp::Reverse(k.specificity()));
    keys.dedup();
    loop {
        let mut merged_any = false;
        let mut out: Vec<TernaryKey> = Vec::with_capacity(keys.len());
        'outer: for key in keys.drain(..) {
            for existing in out.iter_mut() {
                if let Some(m) = existing.try_merge(&key) {
                    *existing = m;
                    merged_any = true;
                    continue 'outer;
                }
            }
            out.push(key);
        }
        keys = out;
        if !merged_any {
            return keys;
        }
    }
}

/// Counts how many TCAM entries a partitioned rule costs after minimization
/// — the expected-partition factor `r_p` of Equation 2.
pub fn minimized_len(keys: &[TernaryKey]) -> usize {
    minimize_keys(keys.to_vec()).len()
}

/// Optimizes a whole rule set before migration (§5.2 step 2).
///
/// Three provably-sound rewrites, applied in order:
///
/// 1. **Shadowed-rule elimination**: a rule fully contained in a strictly
///    higher-priority rule can never match any packet (the higher-priority
///    rule always wins on its entire region) and is dropped — this is the
///    paper's Figure 5(a) situation.
/// 2. **Duplicate elimination**: identical `(key, priority, action)` triples
///    collapse to one entry.
/// 3. **Sibling merging**: rules with equal priority and action whose keys
///    merge (adjacent or nested) become one rule.
///
/// Returns the optimized rules; the relative order of surviving rules is
/// not meaningful (the TCAM orders by priority).
pub fn optimize_ruleset(rules: Vec<Rule>) -> Vec<Rule> {
    // Pass 1: shadowed-rule elimination. Sort by descending priority so we
    // only need to look at earlier rules.
    let mut by_prio = rules;
    by_prio.sort_by_key(|r| std::cmp::Reverse(r.priority));
    let mut kept: Vec<Rule> = Vec::with_capacity(by_prio.len());
    for rule in by_prio {
        let shadowed = kept
            .iter()
            .any(|k| k.priority > rule.priority && k.key.contains(&rule.key));
        if !shadowed {
            kept.push(rule);
        }
    }

    // Passes 2+3: group by (priority, action) and minimize each group's keys.
    let mut groups: BTreeMap<(u32, crate::rule::Action), Vec<Rule>> = BTreeMap::new();
    for rule in kept {
        groups
            .entry((rule.priority.0, rule.action))
            .or_default()
            .push(rule);
    }
    let mut out = Vec::new();
    let mut group_keys: Vec<(u32, crate::rule::Action)> = groups.keys().copied().collect();
    group_keys.sort_by_key(|(p, _)| std::cmp::Reverse(*p));
    for gk in group_keys {
        let members = groups.remove(&gk).expect("INVARIANT: key came from groups.keys() above");
        let representative = members[0];
        let keys: Vec<TernaryKey> = members.iter().map(|r| r.key).collect();
        for key in minimize_keys(keys) {
            out.push(representative.with_key(key));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::Ipv4Prefix;
    use crate::rule::{Action, Priority};

    fn p(s: &str) -> Ipv4Prefix {
        s.parse().unwrap()
    }

    fn rule(id: u64, pfx: &str, prio: u32, action: Action) -> Rule {
        Rule::new(id, p(pfx).to_key(), Priority(prio), action)
    }

    /// Brute-force classifier: highest-priority matching rule's action.
    fn classify(rules: &[Rule], pkt: u128) -> Option<Action> {
        rules
            .iter()
            .filter(|r| r.key.matches(pkt))
            .max_by_key(|r| r.priority)
            .map(|r| r.action)
    }

    #[test]
    fn sibling_prefixes_merge_to_parent() {
        let keys = vec![p("10.0.0.0/25").to_key(), p("10.0.0.128/25").to_key()];
        let merged = minimize_keys(keys);
        assert_eq!(merged, vec![p("10.0.0.0/24").to_key()]);
    }

    #[test]
    fn cascade_merge() {
        // Four /26 siblings collapse all the way to the /24.
        let keys = vec![
            p("10.0.0.0/26").to_key(),
            p("10.0.0.64/26").to_key(),
            p("10.0.0.128/26").to_key(),
            p("10.0.0.192/26").to_key(),
        ];
        assert_eq!(minimize_keys(keys), vec![p("10.0.0.0/24").to_key()]);
    }

    #[test]
    fn single_bit_apart_prefixes_merge_to_ternary_key() {
        // 10.0.0.0/25 and 10.0.1.0/25 differ in exactly one masked bit, so
        // they merge into one (non-prefix-shaped) ternary key covering their
        // exact union.
        let a = p("10.0.0.0/25").to_key();
        let b = p("10.0.1.0/25").to_key();
        let merged = minimize_keys(vec![a, b]);
        assert_eq!(merged.len(), 1);
        for i in 0..4096u32 {
            let pkt = ((0x0a_00_00_00u32 | (i << 4)) as u128) << crate::fields::DST_SHIFT;
            assert_eq!(merged[0].matches(pkt), a.matches(pkt) || b.matches(pkt));
        }
    }

    #[test]
    fn unmergeable_keys_survive() {
        // Two bits apart: no single adjacency merge applies.
        let keys = vec![p("10.0.0.0/25").to_key(), p("10.0.3.0/25").to_key()];
        assert_eq!(minimize_keys(keys).len(), 2);
    }

    #[test]
    fn contained_key_collapses() {
        let keys = vec![p("10.0.0.0/24").to_key(), p("10.0.0.64/26").to_key()];
        assert_eq!(minimize_keys(keys), vec![p("10.0.0.0/24").to_key()]);
    }

    #[test]
    fn duplicates_dedup() {
        let keys = vec![p("10.0.0.0/24").to_key(); 5];
        assert_eq!(minimize_keys(keys).len(), 1);
    }

    #[test]
    fn optimize_removes_shadowed_rules() {
        let rules = vec![
            rule(1, "10.0.0.0/8", 10, Action::Forward(1)),
            // Fully inside the /8 at lower priority: unreachable.
            rule(2, "10.1.0.0/16", 5, Action::Forward(2)),
            rule(3, "11.0.0.0/8", 5, Action::Forward(3)),
        ];
        let out = optimize_ruleset(rules.clone());
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|r| r.id != crate::rule::RuleId(2)));
    }

    #[test]
    fn optimize_keeps_higher_priority_subset() {
        // Subset at *higher* priority is reachable and must survive.
        let rules = vec![
            rule(1, "10.0.0.0/8", 5, Action::Forward(1)),
            rule(2, "10.1.0.0/16", 10, Action::Forward(2)),
        ];
        let out = optimize_ruleset(rules);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn optimize_merges_same_action_groups() {
        let rules = vec![
            rule(1, "10.0.0.0/25", 5, Action::Forward(1)),
            rule(2, "10.0.0.128/25", 5, Action::Forward(1)),
            rule(3, "10.0.1.0/25", 5, Action::Forward(2)), // different action
        ];
        let out = optimize_ruleset(rules);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn optimize_preserves_semantics_randomized() {
        use hermes_util::rng::{Rng, SeedableRng};
        let mut rng = hermes_util::rng::rngs::StdRng::seed_from_u64(11);
        for round in 0..20 {
            let n = rng.gen_range(5..40);
            let rules: Vec<Rule> = (0..n)
                .map(|i| {
                    let len = rng.gen_range(4..=24);
                    // Cluster addresses so overlaps actually happen.
                    let addr = (rng.gen_range(0..8u32)) << 28 | rng.gen_range(0..1u32 << 20);
                    let prio = rng.gen_range(1..6);
                    // Tie the action to the priority: equal-priority
                    // overlapping rules with different actions are ambiguous
                    // in a real TCAM (first match wins), so the oracle could
                    // not compare them deterministically.
                    let action = Action::Forward(prio % 3);
                    rule(i, &Ipv4Prefix::new(addr, len).to_string(), prio, action)
                })
                .collect();
            let optimized = optimize_ruleset(rules.clone());
            assert!(optimized.len() <= rules.len());
            for _ in 0..200 {
                let pkt = (rng.gen::<u32>() as u128) << crate::fields::DST_SHIFT;
                assert_eq!(
                    classify(&rules, pkt),
                    classify(&optimized, pkt),
                    "round {round}: semantics diverged"
                );
            }
        }
    }
}
