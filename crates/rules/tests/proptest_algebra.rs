//! Property-based tests for the classifier algebra — the invariants the
//! whole Hermes correctness story rests on (DESIGN.md §5).

use hermes_rules::merge::{minimize_keys, optimize_ruleset};
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use proptest::prelude::*;

/// Strategy: an arbitrary ternary key over a narrow (16-bit) window so
/// exhaustive packet checks stay cheap.
fn small_key() -> impl Strategy<Value = TernaryKey> {
    (any::<u16>(), any::<u16>())
        .prop_map(|(v, m)| TernaryKey::new((v as u128) << 96, (m as u128) << 96))
}

/// All packets in the 16-bit window.
fn window_packets() -> impl Iterator<Item = u128> {
    (0u32..=0xffff).map(|v| (v as u128) << 96)
}

/// Strategy: an arbitrary IPv4 prefix within 10.0.0.0/8 with length 8..=28.
fn prefix() -> impl Strategy<Value = Ipv4Prefix> {
    (any::<u32>(), 8u8..=28).prop_map(|(addr, len)| Ipv4Prefix::new(0x0a00_0000 | (addr >> 8), len))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `overlaps` is symmetric and consistent with a witness packet search.
    #[test]
    fn overlap_symmetry_and_witness(a in small_key(), b in small_key()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        let witness = window_packets().any(|p| a.matches(p) && b.matches(p));
        prop_assert_eq!(a.overlaps(&b), witness);
    }

    /// Containment a ⊇ b ⇔ every packet of b matches a.
    #[test]
    fn containment_is_semantic(a in small_key(), b in small_key()) {
        let semantic = window_packets().all(|p| !b.matches(p) || a.matches(p));
        prop_assert_eq!(a.contains(&b), semantic);
    }

    /// Intersection matches exactly the packets both keys match.
    #[test]
    fn intersection_semantics(a in small_key(), b in small_key()) {
        match a.intersection(&b) {
            Some(i) => {
                for p in window_packets() {
                    prop_assert_eq!(i.matches(p), a.matches(p) && b.matches(p));
                }
            }
            None => {
                prop_assert!(!a.overlaps(&b));
            }
        }
    }

    /// Difference: pieces are pairwise disjoint and cover exactly `a \ b`.
    #[test]
    fn difference_is_exact_disjoint_cover(a in small_key(), b in small_key()) {
        let pieces = a.difference(&b);
        for p in window_packets() {
            let expect = a.matches(p) && !b.matches(p);
            let n = pieces.iter().filter(|k| k.matches(p)).count();
            prop_assert_eq!(n, usize::from(expect), "packet {:#x}", p);
        }
    }

    /// try_merge result matches exactly the union of its inputs.
    #[test]
    fn merge_is_exact_union(a in small_key(), b in small_key()) {
        if let Some(m) = a.try_merge(&b) {
            for p in window_packets() {
                prop_assert_eq!(m.matches(p), a.matches(p) || b.matches(p));
            }
        }
    }

    /// minimize_keys preserves the matched set and never grows it.
    #[test]
    fn minimize_preserves_union(keys in prop::collection::vec(small_key(), 0..12)) {
        let minimized = minimize_keys(keys.clone());
        prop_assert!(minimized.len() <= keys.len().max(1));
        for p in window_packets().step_by(7) {
            let before = keys.iter().any(|k| k.matches(p));
            let after = minimized.iter().any(|k| k.matches(p));
            prop_assert_eq!(before, after, "packet {:#x}", p);
        }
    }

    /// Prefix difference agrees with brute force over the prefix's hosts.
    #[test]
    fn prefix_difference_semantics(a in prefix(), b in prefix()) {
        let pieces = a.difference(&b);
        // Sample addresses inside `a`.
        let span = 32 - a.len();
        for i in 0..256u32 {
            let host = if span >= 8 { i << (span - 8) } else { i & ((1 << span) - 1) };
            let addr = a.addr() | host;
            let expect = a.matches(addr) && !b.matches(addr);
            let got = pieces.iter().filter(|q| q.matches(addr)).count();
            prop_assert_eq!(got, usize::from(expect), "addr {:#x}", addr);
        }
    }

    /// Prefix containment/overlap laws.
    #[test]
    fn prefix_laws(a in prefix(), b in prefix()) {
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        if a.contains(&b) && b.contains(&a) {
            prop_assert_eq!(a, b);
        }
        // Parent always contains child.
        if let Some(parent) = a.parent() {
            prop_assert!(parent.contains(&a));
        }
        if let Some((l, r)) = a.children() {
            prop_assert!(a.contains(&l) && a.contains(&r));
            prop_assert!(!l.overlaps(&r));
        }
    }

    /// The overlap index returns exactly what a naive scan returns.
    #[test]
    fn overlap_index_matches_naive(
        prefixes in prop::collection::vec((prefix(), 1u32..100), 1..40),
        query in prefix(),
    ) {
        let mut idx = OverlapIndex::new();
        let mut all = Vec::new();
        for (i, (p, prio)) in prefixes.iter().enumerate() {
            let r = Rule::new(i as u64, p.to_key(), Priority(*prio), Action::Drop);
            idx.insert(r);
            all.push(r);
        }
        let qkey = query.to_key();
        let mut got: Vec<u64> = idx.overlapping(&qkey).iter().map(|r| r.id.0).collect();
        let mut want: Vec<u64> = all
            .iter()
            .filter(|r| r.key.overlaps(&qkey))
            .map(|r| r.id.0)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// optimize_ruleset preserves classification (actions tied to priority
    /// so same-priority overlap is unambiguous).
    #[test]
    fn optimize_ruleset_preserves_semantics(
        prefixes in prop::collection::vec((prefix(), 1u32..6), 1..25),
    ) {
        let rules: Vec<Rule> = prefixes
            .iter()
            .enumerate()
            .map(|(i, (p, prio))| {
                Rule::new(i as u64, p.to_key(), Priority(*prio), Action::Forward(prio % 3))
            })
            .collect();
        let optimized = optimize_ruleset(rules.clone());
        prop_assert!(optimized.len() <= rules.len());
        let classify = |set: &[Rule], pkt: u128| {
            set.iter()
                .filter(|r| r.key.matches(pkt))
                .max_by_key(|r| r.priority)
                .map(|r| r.action)
        };
        for i in 0..512u32 {
            let pkt = ((0x0a00_0000u32 | i.wrapping_mul(2654435761) % (1 << 24)) as u128) << 96;
            prop_assert_eq!(classify(&rules, pkt), classify(&optimized, pkt));
        }
    }

    /// Trie removal really removes (and only removes one occurrence).
    #[test]
    fn trie_insert_remove_roundtrip(items in prop::collection::vec((prefix(), 0u32..50), 1..30)) {
        let mut trie = PrefixTrie::new();
        for (p, v) in &items {
            trie.insert(*p, *v);
        }
        prop_assert_eq!(trie.len(), items.len());
        for (p, v) in &items {
            prop_assert!(trie.remove(*p, v));
        }
        prop_assert!(trie.is_empty());
    }
}
