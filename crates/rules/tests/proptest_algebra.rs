//! Property-based tests for the classifier algebra — the invariants the
//! whole Hermes correctness story rests on (DESIGN.md §5). Runs under the
//! in-tree `hermes_util::check!` harness with pinned default seeds.

use hermes_rules::merge::{minimize_keys, optimize_ruleset};
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use hermes_util::check::{arb, range, vec_of, zip2, Gen};

/// Generator: an arbitrary ternary key over a narrow (16-bit) window so
/// exhaustive packet checks stay cheap.
fn small_key() -> Gen<TernaryKey> {
    zip2(arb::<u16>(), arb::<u16>())
        .map(|(v, m)| TernaryKey::new((v as u128) << 96, (m as u128) << 96))
}

/// All packets in the 16-bit window.
fn window_packets() -> impl Iterator<Item = u128> {
    (0u32..=0xffff).map(|v| (v as u128) << 96)
}

/// Generator: an arbitrary IPv4 prefix within 10.0.0.0/8 with length 8..=28.
fn prefix() -> Gen<Ipv4Prefix> {
    zip2(arb::<u32>(), range(8u8..=28))
        .map(|(addr, len)| Ipv4Prefix::new(0x0a00_0000 | (addr >> 8), len))
}

hermes_util::check! {
    #![cases = 256]

    /// `overlaps` is symmetric and consistent with a witness packet search.
    fn overlap_symmetry_and_witness(pair in zip2(small_key(), small_key())) {
        let (a, b) = pair;
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        let witness = window_packets().any(|p| a.matches(p) && b.matches(p));
        assert_eq!(a.overlaps(&b), witness);
    }

    /// Containment a ⊇ b ⇔ every packet of b matches a.
    fn containment_is_semantic(pair in zip2(small_key(), small_key())) {
        let (a, b) = pair;
        let semantic = window_packets().all(|p| !b.matches(p) || a.matches(p));
        assert_eq!(a.contains(&b), semantic);
    }

    /// Intersection matches exactly the packets both keys match.
    fn intersection_semantics(pair in zip2(small_key(), small_key())) {
        let (a, b) = pair;
        match a.intersection(&b) {
            Some(i) => {
                for p in window_packets() {
                    assert_eq!(i.matches(p), a.matches(p) && b.matches(p));
                }
            }
            None => {
                assert!(!a.overlaps(&b));
            }
        }
    }

    /// Difference: pieces are pairwise disjoint and cover exactly `a \ b`.
    fn difference_is_exact_disjoint_cover(pair in zip2(small_key(), small_key())) {
        let (a, b) = pair;
        let pieces = a.difference(&b);
        for p in window_packets() {
            let expect = a.matches(p) && !b.matches(p);
            let n = pieces.iter().filter(|k| k.matches(p)).count();
            assert_eq!(n, usize::from(expect), "packet {:#x}", p);
        }
    }

    /// try_merge result matches exactly the union of its inputs.
    fn merge_is_exact_union(pair in zip2(small_key(), small_key())) {
        let (a, b) = pair;
        if let Some(m) = a.try_merge(&b) {
            for p in window_packets() {
                assert_eq!(m.matches(p), a.matches(p) || b.matches(p));
            }
        }
    }

    /// minimize_keys preserves the matched set and never grows it.
    fn minimize_preserves_union(keys in vec_of(small_key(), 0..12)) {
        let minimized = minimize_keys(keys.clone());
        assert!(minimized.len() <= keys.len().max(1));
        for p in window_packets().step_by(7) {
            let before = keys.iter().any(|k| k.matches(p));
            let after = minimized.iter().any(|k| k.matches(p));
            assert_eq!(before, after, "packet {:#x}", p);
        }
    }

    /// Prefix difference agrees with brute force over the prefix's hosts.
    fn prefix_difference_semantics(pair in zip2(prefix(), prefix())) {
        let (a, b) = pair;
        let pieces = a.difference(&b);
        // Sample addresses inside `a`.
        let span = 32 - a.len();
        for i in 0..256u32 {
            let host = if span >= 8 { i << (span - 8) } else { i & ((1 << span) - 1) };
            let addr = a.addr() | host;
            let expect = a.matches(addr) && !b.matches(addr);
            let got = pieces.iter().filter(|q| q.matches(addr)).count();
            assert_eq!(got, usize::from(expect), "addr {:#x}", addr);
        }
    }

    /// Prefix containment/overlap laws.
    fn prefix_laws(pair in zip2(prefix(), prefix())) {
        let (a, b) = pair;
        assert_eq!(a.overlaps(&b), b.overlaps(&a));
        if a.contains(&b) && b.contains(&a) {
            assert_eq!(a, b);
        }
        // Parent always contains child.
        if let Some(parent) = a.parent() {
            assert!(parent.contains(&a));
        }
        if let Some((l, r)) = a.children() {
            assert!(a.contains(&l) && a.contains(&r));
            assert!(!l.overlaps(&r));
        }
    }

    /// The overlap index returns exactly what a naive scan returns.
    fn overlap_index_matches_naive(
        prefixes in vec_of(zip2(prefix(), range(1u32..100)), 1..40),
        query in prefix(),
    ) {
        let mut idx = OverlapIndex::new();
        let mut all = Vec::new();
        for (i, (p, prio)) in prefixes.iter().enumerate() {
            let r = Rule::new(i as u64, p.to_key(), Priority(*prio), Action::Drop);
            idx.insert(r);
            all.push(r);
        }
        let qkey = query.to_key();
        let mut got: Vec<u64> = idx.overlapping(&qkey).iter().map(|r| r.id.0).collect();
        let mut want: Vec<u64> = all
            .iter()
            .filter(|r| r.key.overlaps(&qkey))
            .map(|r| r.id.0)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    /// optimize_ruleset preserves classification (actions tied to priority
    /// so same-priority overlap is unambiguous).
    fn optimize_ruleset_preserves_semantics(
        prefixes in vec_of(zip2(prefix(), range(1u32..6)), 1..25),
    ) {
        let rules: Vec<Rule> = prefixes
            .iter()
            .enumerate()
            .map(|(i, (p, prio))| {
                Rule::new(i as u64, p.to_key(), Priority(*prio), Action::Forward(prio % 3))
            })
            .collect();
        let optimized = optimize_ruleset(rules.clone());
        assert!(optimized.len() <= rules.len());
        let classify = |set: &[Rule], pkt: u128| {
            set.iter()
                .filter(|r| r.key.matches(pkt))
                .max_by_key(|r| r.priority)
                .map(|r| r.action)
        };
        for i in 0..512u32 {
            let pkt = ((0x0a00_0000u32 | (i.wrapping_mul(2654435761) % (1 << 24))) as u128) << 96;
            assert_eq!(classify(&rules, pkt), classify(&optimized, pkt));
        }
    }

    /// Trie removal really removes (and only removes one occurrence).
    fn trie_insert_remove_roundtrip(items in vec_of(zip2(prefix(), range(0u32..50)), 1..30)) {
        let mut trie = PrefixTrie::new();
        for (p, v) in &items {
            trie.insert(*p, *v);
        }
        assert_eq!(trie.len(), items.len());
        for (p, v) in &items {
            assert!(trie.remove(*p, v));
        }
        assert!(trie.is_empty());
    }
}
