//! ESPRES \[51\]: transparent SDN update scheduling.
//!
//! ESPRES improves rule-installation latency without touching the switch
//! hardware: it **reorders** the updates in a batch so that the switch
//! performs less TCAM shifting. Deletions run first (they are cheap and
//! free space), then insertions are ordered to match the switch's entry
//! packing — descending priority for low-packed TCAMs (each insert
//! appends), ascending for high-packed ones.
//!
//! Unlike Tango, ESPRES never rewrites rules, and unlike Hermes it offers
//! no guarantee: as the table fills up, even optimally-ordered insertions
//! slow down — the divergence the paper shows in Fig. 11.

use crate::plane::{BatchOutcome, ControlPlane, OpOutcome};
use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SimDuration, SimTime, SwitchModel, TcamDevice};

/// The ESPRES scheduler over a monolithic switch.
#[derive(Debug)]
pub struct EspresSwitch {
    device: TcamDevice,
    label: String,
}

impl EspresSwitch {
    /// ESPRES fronting the given switch model.
    pub fn new(model: SwitchModel) -> Self {
        let label = format!("ESPRES ({})", model.name);
        EspresSwitch {
            device: TcamDevice::monolithic(model),
            label,
        }
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &TcamDevice {
        &self.device
    }

    /// Orders a batch for cheap execution on this switch: deletes first,
    /// then inserts in the packing-friendly priority order, then modifies.
    pub fn schedule(&self, actions: &[ControlAction]) -> Vec<ControlAction> {
        let mut deletes = Vec::new();
        let mut inserts = Vec::new();
        let mut modifies = Vec::new();
        for a in actions {
            match a {
                ControlAction::Delete(_) => deletes.push(*a),
                ControlAction::Insert(_) => inserts.push(*a),
                ControlAction::Modify { .. } => modifies.push(*a),
            }
        }
        let ascending = |a: &ControlAction| match a {
            ControlAction::Insert(r) => r.priority,
            _ => Priority::NONE,
        };
        match self.device.model().placement {
            // Low-packed: the lowest-priority entry lives at the end, so
            // installing high→low priority makes every insert an append.
            PlacementStrategy::PackedLow => {
                inserts.sort_by_key(|a| std::cmp::Reverse(ascending(a)))
            }
            // High-packed: the opposite.
            PlacementStrategy::PackedHigh => inserts.sort_by_key(ascending),
            // Balanced packing: alternate extremes so each insert lands
            // near an edge.
            PlacementStrategy::Balanced => {
                inserts.sort_by_key(ascending);
                let mut alternated = Vec::with_capacity(inserts.len());
                let mut lo = 0isize;
                let mut hi = inserts.len() as isize - 1;
                let mut take_hi = true;
                while lo <= hi {
                    if take_hi {
                        alternated.push(inserts[hi as usize]);
                        hi -= 1;
                    } else {
                        alternated.push(inserts[lo as usize]);
                        lo += 1;
                    }
                    take_hi = !take_hi;
                }
                inserts = alternated;
            }
        }
        deletes.into_iter().chain(inserts).chain(modifies).collect()
    }
}

impl ControlPlane for EspresSwitch {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply_batch(&mut self, actions: &[ControlAction], _now: SimTime) -> BatchOutcome {
        let scheduled = self.schedule(actions);
        let mut out = BatchOutcome::default();
        for action in &scheduled {
            let exec = match self.device.apply(0, action) {
                Ok(rep) => rep.latency,
                Err(_) => SimDuration::from_us(50.0),
            };
            out.total += exec;
            out.ops.push(OpOutcome {
                id: action.rule_id(),
                exec,
                completed_at: out.total,
                violated: false,
            });
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.device.total_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::RawSwitch;

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(1))
    }

    fn ascending_batch(n: u64) -> Vec<ControlAction> {
        // Worst case for a PackedLow switch: ascending priorities make every
        // naive insert shift the whole table.
        (0..n)
            .map(|i| ControlAction::Insert(rule(i, "10.0.0.0/8", 10 + i as u32)))
            .collect()
    }

    #[test]
    fn schedule_puts_deletes_first() {
        let e = EspresSwitch::new(SwitchModel::pica8_p3290());
        let batch = vec![
            ControlAction::Insert(rule(1, "10.0.0.0/8", 5)),
            ControlAction::Delete(RuleId(9)),
            ControlAction::Insert(rule(2, "10.0.0.0/8", 6)),
        ];
        let s = e.schedule(&batch);
        assert!(matches!(s[0], ControlAction::Delete(_)));
    }

    #[test]
    fn reordering_beats_naive_on_adversarial_batch() {
        let batch = ascending_batch(200);
        let mut raw = RawSwitch::new(SwitchModel::pica8_p3290());
        let naive = raw.apply_batch(&batch, SimTime::ZERO);
        let mut espres = EspresSwitch::new(SwitchModel::pica8_p3290());
        let scheduled = espres.apply_batch(&batch, SimTime::ZERO);
        assert!(
            scheduled.total < naive.total / 2,
            "ESPRES {:?} should be far cheaper than naive {:?}",
            scheduled.total,
            naive.total
        );
        // Same resulting table contents.
        assert_eq!(raw.occupancy(), espres.occupancy());
    }

    #[test]
    fn ascending_order_for_packed_high() {
        let e = EspresSwitch::new(SwitchModel::dell_8132f()); // PackedHigh
        let batch = ascending_batch(10);
        let s = e.schedule(&batch);
        let prios: Vec<u32> = s
            .iter()
            .map(|a| match a {
                ControlAction::Insert(r) => r.priority.0,
                _ => 0,
            })
            .collect();
        let mut sorted = prios.clone();
        sorted.sort_unstable();
        assert_eq!(prios, sorted, "PackedHigh wants ascending priority order");
    }

    #[test]
    fn balanced_alternates_extremes() {
        let e = EspresSwitch::new(SwitchModel::hp_5406zl()); // Balanced
        let batch = ascending_batch(6);
        let s = e.schedule(&batch);
        let prios: Vec<u32> = s
            .iter()
            .map(|a| match a {
                ControlAction::Insert(r) => r.priority.0,
                _ => 0,
            })
            .collect();
        // First pick is the highest priority, second the lowest.
        assert_eq!(prios[0], 15);
        assert_eq!(prios[1], 10);
        assert_eq!(prios.len(), 6);
    }

    #[test]
    fn semantics_preserved_under_reordering() {
        use hermes_rules::fields::DST_SHIFT;
        let batch = vec![
            ControlAction::Insert(rule(1, "192.168.1.0/24", 1)),
            ControlAction::Insert(rule(2, "192.168.1.0/26", 9)),
        ];
        let mut raw = RawSwitch::new(SwitchModel::pica8_p3290());
        raw.apply_batch(&batch, SimTime::ZERO);
        let mut espres = EspresSwitch::new(SwitchModel::pica8_p3290());
        espres.apply_batch(&batch, SimTime::ZERO);
        for addr in [0xc0a80105u32, 0xc0a801c8] {
            let pkt = (addr as u128) << DST_SHIFT;
            assert_eq!(
                raw.device().peek(pkt).rule(),
                espres.device().peek(pkt).rule()
            );
        }
    }
}
