//! # hermes-baselines — comparison control planes
//!
//! The state-of-the-art techniques the Hermes paper evaluates against
//! (§8.3), plus the shared [`plane::ControlPlane`]
//! abstraction the network simulator drives:
//!
//! * [`plane::RawSwitch`] — the unmodified switch (Pica8 / Dell / HP
//!   behaviour straight from the empirical models);
//! * [`espres::EspresSwitch`] — ESPRES \[51\]: reorders updates to minimize
//!   TCAM shifting, never rewrites rules;
//! * [`tango::TangoSwitch`] — Tango \[43\]: reorders *and* aggregates rules,
//!   exploiting data-center IP allocation structure;
//! * [`plane::HermesPlane`] — Hermes itself behind the same interface.
//!
//! Neither baseline provides guarantees: both merely slow the growth of
//! insertion latency as the table fills — which is exactly what the
//! comparison experiments (Figs. 10 and 11) show.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod espres;
pub mod plane;
pub mod shadowswitch;
pub mod tango;

pub use espres::EspresSwitch;
pub use plane::{BatchOutcome, ControlPlane, CpQueue, HermesPlane, OpOutcome, RawSwitch};
pub use shadowswitch::ShadowSwitch;
pub use tango::TangoSwitch;
