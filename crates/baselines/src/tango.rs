//! Tango \[43\]: switch-property inference, reordering *and* rule rewriting.
//!
//! Tango goes one step beyond ESPRES: besides ordering updates to match the
//! inferred switch behaviour, it **rewrites the rules being inserted** —
//! aggregating same-action, same-priority rules (exploiting the structure
//! of data-center IP allocation) so that fewer TCAM entries are written.
//! That extra degree of freedom is why Tango beats ESPRES at the tail in
//! the paper's Fig. 10, and why the gap is larger on the Facebook trace
//! (aggregatable data-center addressing) than on Geant (ISP prefixes).
//!
//! Like ESPRES, Tango offers no guarantee: the table still fills up and
//! insertions still slow down.
//!
//! Deletion of an aggregated rule splits the aggregate: the merged entry is
//! removed and the surviving members are reinstalled individually (Tango
//! itself is an install-time optimizer; this is the natural completion of
//! its bookkeeping).

use crate::plane::{BatchOutcome, ControlPlane, OpOutcome};
use hermes_rules::merge::minimize_keys;
use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SimDuration, SimTime, SwitchModel, TcamDevice};
use std::collections::BTreeMap;

/// Physical ids for aggregated entries live above this bit.
const AGG_BASE: u64 = 1 << 61;

/// The Tango optimizer over a monolithic switch.
#[derive(Debug)]
pub struct TangoSwitch {
    device: TcamDevice,
    label: String,
    /// physical entry id → logical member rules (for aggregates).
    members: BTreeMap<RuleId, Vec<Rule>>,
    /// logical id → physical entry id.
    locate: BTreeMap<RuleId, RuleId>,
    next_agg: u64,
}

impl TangoSwitch {
    /// Tango fronting the given switch model.
    pub fn new(model: SwitchModel) -> Self {
        let label = format!("Tango ({})", model.name);
        TangoSwitch {
            device: TcamDevice::monolithic(model),
            label,
            members: BTreeMap::new(),
            locate: BTreeMap::new(),
            next_agg: AGG_BASE,
        }
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &TcamDevice {
        &self.device
    }

    /// Groups batch inserts by `(priority, action)` and minimizes each
    /// group's keys. Returns `(physical rules to write, members per
    /// physical rule)`.
    fn aggregate(&mut self, inserts: &[Rule]) -> Vec<(Rule, Vec<Rule>)> {
        let mut groups: BTreeMap<(u32, Action), Vec<Rule>> = BTreeMap::new();
        for r in inserts {
            groups.entry((r.priority.0, r.action)).or_default().push(*r);
        }
        let mut out = Vec::new();
        let mut keys: Vec<(u32, Action)> = groups.keys().copied().collect();
        keys.sort_by_key(|(p, _)| *p);
        for gk in keys {
            let group = groups.remove(&gk).expect("INVARIANT: key came from groups.keys() above");
            if group.len() == 1 {
                out.push((group[0], vec![group[0]]));
                continue;
            }
            let minimized = minimize_keys(group.iter().map(|r| r.key).collect());
            if minimized.len() == group.len() {
                // Nothing merged: install originals under their own ids.
                for r in group {
                    out.push((r, vec![r]));
                }
                continue;
            }
            // Assign each original rule to the minimized key containing it.
            let mut buckets: Vec<Vec<Rule>> = vec![Vec::new(); minimized.len()];
            for r in &group {
                let idx = minimized
                    .iter()
                    .position(|k| k.contains(&r.key))
                    .expect("INVARIANT: minimize() returns a cover of every member key");
                buckets[idx].push(*r);
            }
            for (key, members) in minimized.into_iter().zip(buckets) {
                if members.len() == 1 && members[0].key == key {
                    out.push((members[0], members));
                } else {
                    let phys = Rule {
                        id: RuleId(self.next_agg),
                        key,
                        priority: Priority(gk.0),
                        action: gk.1,
                    };
                    self.next_agg += 1;
                    out.push((phys, members));
                }
            }
        }
        out
    }

    /// Insertion order matching the switch packing (same policy as ESPRES).
    fn order_inserts(&self, physical: &mut [(Rule, Vec<Rule>)]) {
        match self.device.model().placement {
            PlacementStrategy::PackedLow => {
                physical.sort_by_key(|(r, _)| std::cmp::Reverse(r.priority))
            }
            PlacementStrategy::PackedHigh | PlacementStrategy::Balanced => {
                physical.sort_by_key(|(r, _)| r.priority)
            }
        }
    }

    fn delete_logical(&mut self, id: RuleId, out: &mut BatchOutcome) {
        let Some(phys_id) = self.locate.remove(&id) else {
            out.total += SimDuration::from_us(50.0);
            out.ops.push(OpOutcome {
                id,
                exec: SimDuration::from_us(50.0),
                completed_at: out.total,
                violated: false,
            });
            return;
        };
        let mut members = self.members.remove(&phys_id).unwrap_or_default();
        members.retain(|m| m.id != id);
        // Remove the physical entry.
        let mut exec = match self.device.apply(0, &ControlAction::Delete(phys_id)) {
            Ok(rep) => rep.latency,
            Err(_) => SimDuration::from_us(50.0),
        };
        // Reinstall surviving members individually.
        for m in members {
            if let Ok(rep) = self.device.apply(0, &ControlAction::Insert(m)) {
                exec += rep.latency;
                self.locate.insert(m.id, m.id);
                self.members.insert(m.id, vec![m]);
            }
        }
        out.total += exec;
        out.ops.push(OpOutcome {
            id,
            exec,
            completed_at: out.total,
            violated: false,
        });
    }
}

impl ControlPlane for TangoSwitch {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply_batch(&mut self, actions: &[ControlAction], _now: SimTime) -> BatchOutcome {
        let mut out = BatchOutcome::default();

        // Deletes first (cheap, frees space).
        for a in actions {
            if let ControlAction::Delete(id) = a {
                self.delete_logical(*id, &mut out);
            }
        }

        // Aggregate + order the inserts.
        let inserts: Vec<Rule> = actions
            .iter()
            .filter_map(|a| match a {
                ControlAction::Insert(r) if !self.locate.contains_key(&r.id) => Some(*r),
                _ => None,
            })
            .collect();
        let mut physical = self.aggregate(&inserts);
        self.order_inserts(&mut physical);
        for (phys, members) in physical {
            let exec = match self.device.apply(0, &ControlAction::Insert(phys)) {
                Ok(rep) => rep.latency,
                Err(_) => SimDuration::from_us(50.0),
            };
            out.total += exec;
            // Every member completes when its physical entry lands; report
            // one op per member (each member's installation time is the
            // aggregate write's latency — the saving is that one write
            // covers them all).
            for m in &members {
                self.locate.insert(m.id, phys.id);
                out.ops.push(OpOutcome {
                    id: m.id,
                    exec,
                    completed_at: out.total,
                    violated: false,
                });
            }
            self.members.insert(phys.id, members);
        }

        // Modifications pass through unchanged.
        for a in actions {
            if let ControlAction::Modify {
                id,
                action,
                priority,
            } = a
            {
                let target = self.locate.get(id).copied().unwrap_or(*id);
                let exec = match self.device.apply(
                    0,
                    &ControlAction::Modify {
                        id: target,
                        action: *action,
                        priority: *priority,
                    },
                ) {
                    Ok(rep) => rep.latency,
                    Err(_) => SimDuration::from_us(50.0),
                };
                out.total += exec;
                out.ops.push(OpOutcome {
                    id: *id,
                    exec,
                    completed_at: out.total,
                    violated: false,
                });
            }
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.device.total_entries()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espres::EspresSwitch;
    use hermes_rules::fields::DST_SHIFT;

    fn rule(id: u64, pfx: &str, prio: u32, port: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(port))
    }

    #[test]
    fn aggregates_sibling_prefixes() {
        let mut tango = TangoSwitch::new(SwitchModel::pica8_p3290());
        // Four /26 siblings with the same action: one TCAM entry.
        let batch: Vec<ControlAction> = (0..4u64)
            .map(|i| {
                let addr = format!("10.0.0.{}/26", i * 64);
                ControlAction::Insert(rule(i, &addr, 5, 7))
            })
            .collect();
        let out = tango.apply_batch(&batch, SimTime::ZERO);
        assert_eq!(
            tango.occupancy(),
            1,
            "4 siblings must aggregate to one entry"
        );
        assert_eq!(out.ops.len(), 4, "every logical rule still gets an outcome");
        // Lookup semantics: all four /26s forward to port 7.
        let pkt = (0x0a0000c1u32 as u128) << DST_SHIFT;
        assert_eq!(tango.device().peek(pkt).action(), Some(Action::Forward(7)));
    }

    #[test]
    fn different_actions_do_not_aggregate() {
        let mut tango = TangoSwitch::new(SwitchModel::pica8_p3290());
        let batch = vec![
            ControlAction::Insert(rule(1, "10.0.0.0/25", 5, 1)),
            ControlAction::Insert(rule(2, "10.0.0.128/25", 5, 2)),
        ];
        tango.apply_batch(&batch, SimTime::ZERO);
        assert_eq!(tango.occupancy(), 2);
    }

    #[test]
    fn delete_of_aggregate_member_splits() {
        let mut tango = TangoSwitch::new(SwitchModel::pica8_p3290());
        let batch: Vec<ControlAction> = (0..2u64)
            .map(|i| ControlAction::Insert(rule(i, &format!("10.0.0.{}/25", i * 128), 5, 7)))
            .collect();
        tango.apply_batch(&batch, SimTime::ZERO);
        assert_eq!(tango.occupancy(), 1);
        tango.apply_batch(&[ControlAction::Delete(RuleId(0))], SimTime::ZERO);
        assert_eq!(tango.occupancy(), 1, "survivor reinstalled individually");
        // Rule 0's half no longer matches; rule 1's half does.
        let gone = (0x0a000001u32 as u128) << DST_SHIFT;
        let kept = (0x0a000081u32 as u128) << DST_SHIFT;
        assert_eq!(tango.device().peek(gone).action(), None);
        assert_eq!(tango.device().peek(kept).action(), Some(Action::Forward(7)));
        // Deleting the survivor empties the table.
        tango.apply_batch(&[ControlAction::Delete(RuleId(1))], SimTime::ZERO);
        assert_eq!(tango.occupancy(), 0);
    }

    #[test]
    fn tango_beats_espres_on_aggregatable_workload() {
        // Data-center-style batch: many same-action sibling prefixes at one
        // priority — Tango collapses them, ESPRES cannot.
        let batch: Vec<ControlAction> = (0..256u64)
            .map(|i| {
                let addr = (10u32 << 24) | ((i as u32) << 8);
                ControlAction::Insert(Rule::new(
                    i,
                    Ipv4Prefix::new(addr, 24).to_key(),
                    Priority(5),
                    Action::Forward(1),
                ))
            })
            .collect();
        let mut tango = TangoSwitch::new(SwitchModel::pica8_p3290());
        let t = tango.apply_batch(&batch, SimTime::ZERO);
        let mut espres = EspresSwitch::new(SwitchModel::pica8_p3290());
        let e = espres.apply_batch(&batch, SimTime::ZERO);
        assert!(
            t.total < e.total,
            "Tango {:?} should beat ESPRES {:?} via aggregation",
            t.total,
            e.total
        );
        assert!(tango.occupancy() < espres.occupancy());
    }

    #[test]
    fn duplicate_logical_insert_ignored() {
        let mut tango = TangoSwitch::new(SwitchModel::pica8_p3290());
        let r = rule(1, "10.0.0.0/8", 5, 1);
        tango.apply_batch(&[ControlAction::Insert(r)], SimTime::ZERO);
        tango.apply_batch(&[ControlAction::Insert(r)], SimTime::ZERO);
        assert_eq!(tango.occupancy(), 1);
    }
}
