//! ShadowSwitch \[26\]: the *software*-table design point.
//!
//! The paper's closest relative: instead of carving a hardware shadow
//! slice, ShadowSwitch absorbs insertions into a software table (fast to
//! update — microseconds) and migrates entries to the TCAM in the
//! background. The trade-off is on the *data plane*: packets matching only
//! software-resident rules traverse the switch CPU's slow path until the
//! hardware copy lands.
//!
//! Hermes explicitly explores the other side of this trade-off (§9:
//! "the use of a hardware-based table enables Hermes to explore an
//! alternate point in the design space"). This implementation makes the
//! comparison concrete: control-plane RIT is nearly free, and the
//! [`slow_path_fraction`](ShadowSwitch::slow_path_fraction) telemetry
//! exposes the data-plane price Hermes never pays.

use crate::plane::{BatchOutcome, ControlPlane, OpOutcome};
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel, TcamDevice};
use std::collections::VecDeque;

/// The ShadowSwitch agent: software table + hardware TCAM.
#[derive(Debug)]
pub struct ShadowSwitch {
    device: TcamDevice,
    /// Rules resident only in software, in arrival order.
    software: VecDeque<Rule>,
    /// Cost of a software-table update.
    software_insert: SimDuration,
    /// The hardware keeps migrating in the background; it is busy until
    /// this instant.
    hw_busy_until: SimTime,
    label: String,
    /// Lookups served from the software slow path / total lookups.
    slow_path_hits: u64,
    lookups: u64,
}

impl ShadowSwitch {
    /// ShadowSwitch fronting the given hardware model.
    pub fn new(model: SwitchModel) -> Self {
        let label = format!("ShadowSwitch ({})", model.name);
        ShadowSwitch {
            device: TcamDevice::monolithic(model),
            software: VecDeque::new(),
            software_insert: SimDuration::from_us(20.0),
            hw_busy_until: SimTime::ZERO,
            label,
            slow_path_hits: 0,
            lookups: 0,
        }
    }

    /// Rules currently stuck in the software table.
    pub fn software_resident(&self) -> usize {
        self.software.len()
    }

    /// Fraction of lookups that hit the software slow path.
    pub fn slow_path_fraction(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.slow_path_hits as f64 / self.lookups as f64
        }
    }

    /// Background migration: move software rules into the TCAM while the
    /// hardware is free, up to `now`.
    fn drain(&mut self, now: SimTime) {
        // The hardware migrates continuously whenever it is free: each
        // write advances the busy horizon by its own latency, and as long
        // as the horizon has not passed `now` there was real time in which
        // the write happened.
        while let Some(rule) = self.software.front().copied() {
            if self.hw_busy_until > now {
                break;
            }
            match self.device.apply(0, &ControlAction::Insert(rule)) {
                Ok(rep) => {
                    self.hw_busy_until += rep.latency;
                    self.software.pop_front();
                }
                Err(_) => break, // TCAM full: rules stay in software
            }
        }
        if self.hw_busy_until < now {
            self.hw_busy_until = now; // idle horizon catches up
        }
    }

    /// Data-plane lookup: hardware first; on miss, the software table
    /// (slow path).
    pub fn lookup(&mut self, packet: u128) -> Option<Action> {
        self.lookups += 1;
        if let Some(rule) = self.device.peek(packet).rule() {
            // Software rules may shadow hardware ones (they are newer);
            // check precedence against software matches.
            if let Some(sw) = self
                .software
                .iter()
                .filter(|r| r.key.matches(packet))
                .max_by_key(|r| r.priority)
            {
                if sw.priority > rule.priority {
                    self.slow_path_hits += 1;
                    return Some(sw.action);
                }
            }
            return Some(rule.action);
        }
        if let Some(sw) = self
            .software
            .iter()
            .filter(|r| r.key.matches(packet))
            .max_by_key(|r| r.priority)
        {
            self.slow_path_hits += 1;
            return Some(sw.action);
        }
        None
    }
}

impl ControlPlane for ShadowSwitch {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply_batch(&mut self, actions: &[ControlAction], now: SimTime) -> BatchOutcome {
        self.drain(now);
        let mut out = BatchOutcome::default();
        for action in actions {
            let exec = match action {
                ControlAction::Insert(rule) => {
                    self.software.push_back(*rule);
                    self.software_insert
                }
                ControlAction::Delete(id) => {
                    if let Some(pos) = self.software.iter().position(|r| r.id == *id) {
                        self.software.remove(pos);
                        self.software_insert
                    } else {
                        match self.device.apply(0, action) {
                            Ok(rep) => rep.latency,
                            Err(_) => SimDuration::from_us(50.0),
                        }
                    }
                }
                ControlAction::Modify { id, .. } => {
                    if let Some(sw) = self.software.iter_mut().find(|r| r.id == *id) {
                        if let ControlAction::Modify {
                            action: Some(a), ..
                        } = action
                        {
                            sw.action = *a;
                        }
                        self.software_insert
                    } else {
                        match self.device.apply(0, action) {
                            Ok(rep) => rep.latency,
                            Err(_) => SimDuration::from_us(50.0),
                        }
                    }
                }
            };
            out.total += exec;
            out.ops.push(OpOutcome {
                id: action.rule_id(),
                exec,
                completed_at: out.total,
                violated: false,
            });
        }
        self.drain(now + out.total);
        out
    }

    fn occupancy(&self) -> usize {
        self.device.total_entries() + self.software.len()
    }

    fn tick(&mut self, now: SimTime) {
        self.drain(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(id: u64, pfx: &str, prio: u32, port: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(port))
    }

    fn pkt(s: &str) -> u128 {
        let p: Ipv4Prefix = format!("{s}/32").parse().unwrap();
        (p.addr() as u128) << 96
    }

    #[test]
    fn inserts_are_software_fast() {
        let mut ss = ShadowSwitch::new(SwitchModel::pica8_p3290());
        let batch: Vec<ControlAction> = (0..100)
            .map(|i| ControlAction::Insert(rule(i, "10.0.0.0/8", 100 + i as u32, 1)))
            .collect();
        let out = ss.apply_batch(&batch, SimTime::ZERO);
        for op in &out.ops {
            assert_eq!(op.exec, SimDuration::from_us(20.0));
        }
    }

    #[test]
    fn software_rules_visible_immediately_via_slow_path() {
        let mut ss = ShadowSwitch::new(SwitchModel::pica8_p3290());
        ss.apply_batch(
            &[ControlAction::Insert(rule(1, "10.0.0.0/8", 5, 7))],
            SimTime::ZERO,
        );
        assert_eq!(ss.lookup(pkt("10.1.1.1")), Some(Action::Forward(7)));
        assert!(ss.slow_path_fraction() > 0.0 || ss.software_resident() == 0);
    }

    #[test]
    fn background_migration_drains_software() {
        let mut ss = ShadowSwitch::new(SwitchModel::pica8_p3290());
        let batch: Vec<ControlAction> = (0..50)
            .map(|i| ControlAction::Insert(rule(i, "10.0.0.0/8", 100 + i as u32, 1)))
            .collect();
        ss.apply_batch(&batch, SimTime::ZERO);
        // Give the hardware plenty of background time.
        ss.tick(SimTime::from_secs(60.0));
        assert_eq!(ss.software_resident(), 0, "software table should drain");
        // Now lookups are pure fast path.
        let before = ss.slow_path_hits;
        ss.lookup(pkt("10.1.1.1"));
        assert_eq!(ss.slow_path_hits, before);
    }

    #[test]
    fn newer_software_rule_wins_over_hardware() {
        let mut ss = ShadowSwitch::new(SwitchModel::pica8_p3290());
        ss.apply_batch(
            &[ControlAction::Insert(rule(1, "10.0.0.0/8", 5, 1))],
            SimTime::ZERO,
        );
        ss.tick(SimTime::from_secs(10.0)); // rule 1 now in hardware
                                           // Higher-priority update arrives in software.
        ss.apply_batch(
            &[ControlAction::Insert(rule(2, "10.0.0.0/9", 9, 2))],
            SimTime::from_secs(10.0),
        );
        assert_eq!(ss.lookup(pkt("10.1.1.1")), Some(Action::Forward(2)));
    }

    #[test]
    fn delete_from_software_and_hardware() {
        let mut ss = ShadowSwitch::new(SwitchModel::pica8_p3290());
        ss.apply_batch(
            &[ControlAction::Insert(rule(1, "10.0.0.0/8", 5, 1))],
            SimTime::ZERO,
        );
        // Still in software: delete there.
        ss.apply_batch(&[ControlAction::Delete(RuleId(1))], SimTime::ZERO);
        assert_eq!(ss.occupancy(), 0);
        // Hardware-resident delete.
        ss.apply_batch(
            &[ControlAction::Insert(rule(2, "11.0.0.0/8", 5, 1))],
            SimTime::ZERO,
        );
        ss.tick(SimTime::from_secs(10.0));
        ss.apply_batch(
            &[ControlAction::Delete(RuleId(2))],
            SimTime::from_secs(10.0),
        );
        assert_eq!(ss.occupancy(), 0);
    }
}
