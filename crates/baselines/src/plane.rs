//! The control-plane abstraction shared by Hermes, the baselines and the
//! network simulator.
//!
//! A [`ControlPlane`] accepts batches of control actions (an SDN app's
//! `flow-mod`s for one switch) and executes them serially on the switch
//! ASIC, returning per-action completion offsets. The simulator layers
//! queueing on top: a batch arriving while the control channel is busy
//! waits for the previous batch to drain ([`CpQueue`]).

use hermes_core::prelude::*;
use hermes_rules::prelude::*;
use hermes_tcam::{CrashKind, SimDuration, SimTime, SwitchModel, TcamDevice};

/// Outcome of one control action inside a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpOutcome {
    /// The logical rule the action addressed.
    pub id: RuleId,
    /// Execution time of this action alone.
    pub exec: SimDuration,
    /// Completion time relative to batch start (cumulative, since the
    /// control channel is serial).
    pub completed_at: SimDuration,
    /// Whether a guarantee was violated (Hermes only; always `false` for
    /// baselines, which promise nothing).
    pub violated: bool,
}

/// Outcome of a whole batch.
#[derive(Clone, Debug, Default)]
pub struct BatchOutcome {
    /// Per-action outcomes, in execution order (which may differ from
    /// submission order for reordering baselines).
    pub ops: Vec<OpOutcome>,
    /// Total control-plane time consumed by the batch.
    pub total: SimDuration,
}

impl BatchOutcome {
    /// The completion offset of a specific rule's action, if present.
    pub fn completion_of(&self, id: RuleId) -> Option<SimDuration> {
        self.ops.iter().find(|o| o.id == id).map(|o| o.completed_at)
    }
}

/// A switch control plane: executes control actions with some strategy.
pub trait ControlPlane {
    /// Display name (used in experiment output, matching the paper's
    /// figure legends).
    fn name(&self) -> String;

    /// Executes a batch of actions, serially, starting at `now`.
    fn apply_batch(&mut self, actions: &[ControlAction], now: SimTime) -> BatchOutcome;

    /// Convenience: executes a single action.
    fn apply(&mut self, action: &ControlAction, now: SimTime) -> OpOutcome {
        let out = self.apply_batch(std::slice::from_ref(action), now);
        out.ops[0]
    }

    /// Total TCAM entries currently installed.
    fn occupancy(&self) -> usize;

    /// Periodic housekeeping (Hermes's Rule Manager tick; no-op for
    /// baselines).
    fn tick(&mut self, _now: SimTime) {}

    /// Migration passes performed so far (0 for planes without a Rule
    /// Manager).
    fn migrations(&self) -> u64 {
        0
    }

    /// Signals the end of a warm-up/preload phase: installed state stays,
    /// but time-dependent state (admission buckets, busy windows) resets
    /// to the epoch. No-op for stateless planes.
    fn end_warmup(&mut self) {}

    /// Recovery-subsystem health counters, for planes that have one
    /// (`None` for baselines without retry/reconciliation machinery).
    fn recovery_stats(&self) -> Option<RecoveryStats> {
        None
    }

    /// Crashes the switch (simulated power loss / agent reboot). Planes
    /// without a crash fault domain ignore the injection: their control
    /// session is assumed eternally healthy, matching pre-crash-layer
    /// behaviour.
    fn inject_crash(
        &mut self,
        _kind: CrashKind,
        _survivor_seed: u64,
        _reconnect_denials: u32,
        _now: SimTime,
    ) {
    }

    /// Whether the control session is currently dead (crash window still
    /// open). Always `false` for planes without a fault domain.
    fn is_down(&self) -> bool {
        false
    }

    /// Resync-subsystem health counters (`None` for planes without a
    /// crash/resync engine).
    fn resync_stats(&self) -> Option<ResyncStats> {
        None
    }

    /// Whether the plane currently holds the given logical rule
    /// (deferred admissions included — accepted, just not yet placed).
    /// `None` for planes without per-rule introspection; the fleet's
    /// two-phase staging check treats those optimistically.
    fn contains_rule(&self, _id: RuleId) -> Option<bool> {
        None
    }
}

impl ControlPlane for Box<dyn ControlPlane> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn apply_batch(&mut self, actions: &[ControlAction], now: SimTime) -> BatchOutcome {
        (**self).apply_batch(actions, now)
    }

    fn occupancy(&self) -> usize {
        (**self).occupancy()
    }

    fn tick(&mut self, now: SimTime) {
        (**self).tick(now)
    }

    fn migrations(&self) -> u64 {
        (**self).migrations()
    }

    fn end_warmup(&mut self) {
        (**self).end_warmup()
    }

    fn recovery_stats(&self) -> Option<RecoveryStats> {
        (**self).recovery_stats()
    }

    fn inject_crash(
        &mut self,
        kind: CrashKind,
        survivor_seed: u64,
        reconnect_denials: u32,
        now: SimTime,
    ) {
        (**self).inject_crash(kind, survivor_seed, reconnect_denials, now)
    }

    fn is_down(&self) -> bool {
        (**self).is_down()
    }

    fn resync_stats(&self) -> Option<ResyncStats> {
        (**self).resync_stats()
    }

    fn contains_rule(&self, id: RuleId) -> Option<bool> {
        (**self).contains_rule(id)
    }
}

/// The unmodified switch: actions execute in submission order against a
/// monolithic table. This is the paper's "Pica8 P-3290 / Dell 8132F /
/// HP 5406zl" comparison point.
#[derive(Debug)]
pub struct RawSwitch {
    device: TcamDevice,
    label: String,
}

impl RawSwitch {
    /// A raw switch over the given model.
    pub fn new(model: SwitchModel) -> Self {
        let label = model.name.clone();
        RawSwitch {
            device: TcamDevice::monolithic(model),
            label,
        }
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &TcamDevice {
        &self.device
    }
}

impl ControlPlane for RawSwitch {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn apply_batch(&mut self, actions: &[ControlAction], _now: SimTime) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        for action in actions {
            let exec = match self.device.apply(0, action) {
                Ok(rep) => rep.latency,
                // Full table / missing rule: the agent spends a nominal
                // rejection cost and reports an error to the controller.
                Err(_) => SimDuration::from_us(50.0),
            };
            out.total += exec;
            out.ops.push(OpOutcome {
                id: action.rule_id(),
                exec,
                completed_at: out.total,
                violated: false,
            });
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.device.total_entries()
    }
}

/// Hermes as a [`ControlPlane`], for apples-to-apples comparisons.
#[derive(Debug)]
pub struct HermesPlane {
    switch: HermesSwitch,
}

impl HermesPlane {
    /// Wraps a configured Hermes agent.
    pub fn new(switch: HermesSwitch) -> Self {
        HermesPlane { switch }
    }

    /// Builds directly from a model and config.
    pub fn with_config(
        model: SwitchModel,
        config: hermes_core::config::HermesConfig,
    ) -> Result<Self, HermesError> {
        let mut switch = HermesSwitch::new(model, config)?;
        // Opt-in chaos: HERMES_FAULT_SEED in the environment arms the
        // deterministic fault plan on every Hermes plane (unset: no faults,
        // behaviour identical to before the fault layer existed).
        switch.install_fault_plan(hermes_tcam::FaultPlan::from_env());
        Ok(HermesPlane { switch })
    }

    /// Borrow the agent.
    pub fn switch(&self) -> &HermesSwitch {
        &self.switch
    }

    /// Mutably borrow the agent.
    pub fn switch_mut(&mut self) -> &mut HermesSwitch {
        &mut self.switch
    }
}

impl ControlPlane for HermesPlane {
    fn name(&self) -> String {
        "Hermes".into()
    }

    fn apply_batch(&mut self, actions: &[ControlAction], now: SimTime) -> BatchOutcome {
        let mut out = BatchOutcome::default();
        let mut i = 0;
        while i < actions.len() {
            // Maximal runs of ≥2 consecutive inserts ride the batched
            // admission pipeline (one handshake, one coalesced shift
            // plan); singletons and non-insert actions take the per-op
            // path unchanged.
            let run_end = i + actions[i..]
                .iter()
                .take_while(|a| matches!(a, ControlAction::Insert(_)))
                .count();
            if run_end - i >= 2 {
                let rules: Vec<Rule> = actions[i..run_end]
                    .iter()
                    .filter_map(|a| match a {
                        ControlAction::Insert(r) => Some(*r),
                        _ => None,
                    })
                    .collect();
                let reports = self.switch.admit_batch(&rules, now + out.total);
                for (rule, rep) in rules.iter().zip(reports) {
                    let (exec, violated) = match rep {
                        Ok(rep) => (rep.latency, rep.violated()),
                        Err(_) => (SimDuration::from_us(50.0), false),
                    };
                    out.total += exec;
                    out.ops.push(OpOutcome {
                        id: rule.id,
                        exec,
                        completed_at: out.total,
                        violated,
                    });
                }
                i = run_end;
            } else {
                let action = &actions[i];
                let (exec, violated) = match self.switch.submit(action, now + out.total) {
                    Ok(rep) => (rep.latency, rep.violated()),
                    Err(_) => (SimDuration::from_us(50.0), false),
                };
                out.total += exec;
                out.ops.push(OpOutcome {
                    id: action.rule_id(),
                    exec,
                    completed_at: out.total,
                    violated,
                });
                i += 1;
            }
        }
        out
    }

    fn occupancy(&self) -> usize {
        self.switch.shadow_len() + self.switch.main_len()
    }

    fn tick(&mut self, now: SimTime) {
        self.switch.tick(now);
    }

    fn migrations(&self) -> u64 {
        self.switch.migrations()
    }

    fn end_warmup(&mut self) {
        self.switch.end_warmup();
    }

    fn recovery_stats(&self) -> Option<RecoveryStats> {
        Some(self.switch.recovery_stats())
    }

    fn inject_crash(
        &mut self,
        kind: CrashKind,
        survivor_seed: u64,
        reconnect_denials: u32,
        now: SimTime,
    ) {
        self.switch
            .inject_crash(kind, survivor_seed, reconnect_denials, now);
    }

    fn is_down(&self) -> bool {
        self.switch.is_down()
    }

    fn resync_stats(&self) -> Option<ResyncStats> {
        Some(self.switch.resync_stats())
    }

    fn contains_rule(&self, id: RuleId) -> Option<bool> {
        Some(self.switch.contains(id))
    }
}

/// Serial control-channel queueing on top of a [`ControlPlane`]: batches
/// submitted while the channel is busy wait their turn. Rule installation
/// time (RIT) as reported by the experiments is
/// `queueing delay + execution offset`.
#[derive(Debug)]
pub struct CpQueue<P> {
    plane: P,
    busy_until: SimTime,
}

impl<P: ControlPlane> CpQueue<P> {
    /// Wraps a control plane with an idle channel.
    pub fn new(plane: P) -> Self {
        CpQueue {
            plane,
            busy_until: SimTime::ZERO,
        }
    }

    /// The wrapped plane.
    pub fn plane(&self) -> &P {
        &self.plane
    }

    /// Mutable access to the wrapped plane.
    pub fn plane_mut(&mut self) -> &mut P {
        &mut self.plane
    }

    /// When the channel next becomes idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Submits a batch at `now`; returns the batch outcome and the absolute
    /// completion time of each op (start-of-service + offset).
    pub fn submit(&mut self, actions: &[ControlAction], now: SimTime) -> (SimTime, BatchOutcome) {
        let start = if now > self.busy_until {
            now
        } else {
            self.busy_until
        };
        let outcome = self.plane.apply_batch(actions, start);
        self.busy_until = start + outcome.total;
        (start, outcome)
    }

    /// Absolute RIT of one rule in a batch outcome submitted at `now` with
    /// the returned `start`.
    pub fn rit(now: SimTime, start: SimTime, op: &OpOutcome) -> SimDuration {
        (start + op.completed_at) - now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_core::config::HermesConfig;

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(1))
    }

    #[test]
    fn raw_switch_serial_latency_accumulates() {
        let mut raw = RawSwitch::new(SwitchModel::pica8_p3290());
        let actions: Vec<ControlAction> = (0..10)
            .map(|i| ControlAction::Insert(rule(i, "10.0.0.0/8", 100 + i as u32)))
            .collect();
        let out = raw.apply_batch(&actions, SimTime::ZERO);
        assert_eq!(out.ops.len(), 10);
        // Offsets strictly increase.
        for w in out.ops.windows(2) {
            assert!(w[1].completed_at > w[0].completed_at);
        }
        assert_eq!(out.total, out.ops.last().unwrap().completed_at);
        assert_eq!(raw.occupancy(), 10);
    }

    #[test]
    fn raw_switch_reports_errors_cheaply() {
        let mut raw = RawSwitch::new(SwitchModel::pica8_p3290());
        let out = raw.apply(&ControlAction::Delete(RuleId(42)), SimTime::ZERO);
        assert_eq!(out.exec, SimDuration::from_us(50.0));
        assert_eq!(raw.occupancy(), 0);
    }

    #[test]
    fn hermes_plane_reports_violations() {
        let mut plane =
            HermesPlane::with_config(SwitchModel::pica8_p3290(), HermesConfig::default()).unwrap();
        let out = plane.apply(
            &ControlAction::Insert(rule(1, "10.0.0.0/8", 5)),
            SimTime::ZERO,
        );
        assert!(!out.violated);
        assert!(out.exec <= SimDuration::from_ms(5.0));
        assert_eq!(plane.occupancy(), 1);
    }

    #[test]
    fn hermes_plane_batches_insert_runs() {
        let mk = || {
            HermesPlane::with_config(SwitchModel::pica8_p3290(), HermesConfig::default()).unwrap()
        };
        let actions: Vec<ControlAction> = (0..10)
            .map(|i| ControlAction::Insert(rule(i, &format!("10.{i}.0.0/16"), 100 + i as u32)))
            .collect();
        let mut grouped = mk();
        let out = grouped.apply_batch(&actions, SimTime::ZERO);
        assert_eq!(out.ops.len(), 10);
        for (op, action) in out.ops.iter().zip(&actions) {
            assert_eq!(op.id, action.rule_id(), "submission order preserved");
        }
        for w in out.ops.windows(2) {
            assert!(w[1].completed_at > w[0].completed_at);
        }
        assert_eq!(grouped.occupancy(), 10);
        // The same actions one at a time pay ten handshakes.
        let mut singly = mk();
        let mut singly_total = SimDuration::ZERO;
        for a in &actions {
            singly_total += singly.apply(a, SimTime::ZERO + singly_total).exec;
        }
        assert!(
            out.total < singly_total,
            "batched run must be cheaper: {} vs {}",
            out.total,
            singly_total
        );
        assert_eq!(grouped.occupancy(), singly.occupancy());
    }

    #[test]
    fn queue_serializes_batches() {
        let mut q = CpQueue::new(RawSwitch::new(SwitchModel::pica8_p3290()));
        let b1: Vec<ControlAction> = (0..5)
            .map(|i| ControlAction::Insert(rule(i, "10.0.0.0/8", 10 + i as u32)))
            .collect();
        let (s1, o1) = q.submit(&b1, SimTime::ZERO);
        assert_eq!(s1, SimTime::ZERO);
        // Second batch arrives while the first is still executing.
        let b2 = vec![ControlAction::Insert(rule(99, "11.0.0.0/8", 5))];
        let arrival = SimTime::from_nanos(1);
        let (s2, o2) = q.submit(&b2, arrival);
        assert_eq!(
            s2,
            SimTime::ZERO + o1.total,
            "second batch waits for the channel"
        );
        let rit = CpQueue::<RawSwitch>::rit(arrival, s2, &o2.ops[0]);
        assert!(rit > o2.ops[0].exec, "RIT includes queueing delay");
    }
}
