//! # hermes-harness — the process-level scenario orchestrator
//!
//! Everything before this crate measures Hermes *inside* one process; the
//! harness measures the binaries the way CI and operators actually run
//! them (DESIGN.md §11). It loads the scenario matrix
//! (`scenarios/matrix.toml`, parsed by [`hermes_util::scenario`] — the
//! same parser the binaries use), spawns each scenario's release
//! `exp_*` binary as an OS process `runs` seeded times, samples
//! `/proc/<pid>/{statm,stat}` for RSS/CPU while the child runs, merges
//! the emitted `BENCH_*.json` reports, and writes a versioned
//! [`report::SCHEMA`] (`hermes-matrix-report/1`) summary with
//! nearest-rank percentiles and confidence intervals.
//!
//! The report splits into two halves with different determinism
//! contracts:
//!
//! * **merged** — everything derived from the children's BENCH reports
//!   (counters, histograms, exit statuses). A pure function of the
//!   matrix and the seeds: byte-identical across identical runs, which
//!   is what the *canonical summary* contains and what the determinism
//!   tests pin.
//! * **measured** — wall-clock, peak RSS and CPU time observed from
//!   outside. Jittery by nature; gated not byte-wise but by
//!   `scripts/perfgate.py wallclock`'s tolerance band.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod merge;
pub mod procsample;
pub mod report;
pub mod run;

pub use merge::{MergedHistogram, MergedScenario};
pub use run::{run_matrix, MatrixRun, RepResult, RunConfig, ScenarioRun};
