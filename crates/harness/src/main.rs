//! `hermes-harness` — run the scenario matrix as OS processes.
//!
//! ```text
//! hermes-harness [--matrix scenarios/matrix.toml] [--scenarios a,b,c]
//!                [--runs N] [--bin-dir target/release]
//!                [--out hermes-out/matrix]
//! ```
//!
//! Writes per-repetition `BENCH` reports and stderr captures under
//! `<out>/<scenario>/`, the full `hermes-matrix-report/1` document to
//! `<out>/matrix_report.json`, and the byte-stable canonical summary to
//! `<out>/matrix_summary.json`. Exits nonzero when any repetition fails
//! or the configuration is invalid.

#![forbid(unsafe_code)]

use hermes_harness::{report, run_matrix, RunConfig};
use std::path::PathBuf;

fn usage() -> String {
    "usage: hermes-harness [--matrix <file>] [--scenarios <a,b,c>] [--runs <n>] \
     [--bin-dir <dir>] [--out <dir>]"
        .to_string()
}

fn parse_args(args: impl Iterator<Item = String>) -> Result<RunConfig, String> {
    let mut cfg = RunConfig {
        matrix_path: PathBuf::from("scenarios/matrix.toml"),
        bin_dir: PathBuf::from("target/release"),
        out_dir: PathBuf::from("hermes-out/matrix"),
        scenarios: None,
        runs_override: None,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        let mut value = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value\n{}", usage()))
        };
        match a.as_str() {
            "--matrix" => cfg.matrix_path = PathBuf::from(value("--matrix")?),
            "--bin-dir" => cfg.bin_dir = PathBuf::from(value("--bin-dir")?),
            "--out" => cfg.out_dir = PathBuf::from(value("--out")?),
            "--scenarios" => {
                cfg.scenarios = Some(
                    value("--scenarios")?
                        .split(',')
                        .map(|s| s.trim().to_string())
                        .filter(|s| !s.is_empty())
                        .collect(),
                )
            }
            "--runs" => {
                let v = value("--runs")?;
                cfg.runs_override = Some(
                    v.parse()
                        .ok()
                        .filter(|&n| n >= 1)
                        .ok_or_else(|| format!("--runs {v:?} is not a positive integer"))?,
                )
            }
            other => return Err(format!("unknown argument {other:?}\n{}", usage())),
        }
    }
    Ok(cfg)
}

fn main() -> std::process::ExitCode {
    hermes_telemetry::init_from_env();
    match real_main() {
        Ok(0) => std::process::ExitCode::SUCCESS,
        Ok(failures) => {
            eprintln!("hermes-harness: {failures} repetition(s) failed");
            std::process::ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("hermes-harness: error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

fn real_main() -> Result<u64, String> {
    let cfg = parse_args(std::env::args().skip(1))?;
    std::fs::create_dir_all(&cfg.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", cfg.out_dir.display()))?;
    let run = run_matrix(&cfg)?;
    for s in &run.scenarios {
        let wall: Vec<f64> = s.reps.iter().map(|r| r.wall_ms).collect();
        let mut sorted = wall.clone();
        hermes_util::stats::sort_samples(&mut sorted);
        println!(
            "{:<14} {:<14} runs={} clean={} wall p50={:.1}ms max={:.1}ms ±{:.1}ms",
            s.name,
            s.bin,
            s.runs,
            s.runs as u64 - s.failures(),
            hermes_util::stats::quantile_sorted(&sorted, 0.5),
            hermes_util::stats::quantile_sorted(&sorted, 1.0),
            report::ci95_halfwidth(&wall),
        );
        for r in &s.reps {
            if let Some(e) = &r.error {
                eprintln!("  rep {}: {e}", r.rep);
            }
        }
    }
    let full = report::build(&run, false);
    let canonical = report::build(&run, true);
    for (name, doc) in [("matrix_report.json", &full), ("matrix_summary.json", &canonical)] {
        let path = cfg.out_dir.join(name);
        std::fs::write(&path, doc.to_string())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!("wrote {}", path.display());
    }
    Ok(run.failures())
}
