//! Merging per-repetition `BENCH_*.json` reports into one scenario view.
//!
//! Counters are kept per repetition (in rep order) and summarized with
//! nearest-rank percentiles; a scenario whose counters are identical
//! across repetitions is flagged `equal_across_reps` — the property the
//! counter-exact perf tier relies on. Histograms merge by summing their
//! sparse `[lower_bound, count]` bucket lists, so merged quantiles come
//! from the union distribution, not from averaging per-rep quantiles.

use hermes_util::json::Json;
use std::collections::BTreeMap;

/// A log-linear histogram reassembled from one or more report documents.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergedHistogram {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: i128,
    /// Smallest recorded value.
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Bucket lower bound → summed count.
    pub buckets: BTreeMap<u64, u64>,
}

impl MergedHistogram {
    /// Folds one report histogram (the `hermes-bench-report/1` shape:
    /// `{count, sum, min, max, …, buckets: [[lower, n], …]}`) in.
    pub fn absorb(&mut self, h: &Json) -> Result<(), String> {
        let num = |key: &str| -> Result<f64, String> {
            h.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("histogram missing numeric {key:?}"))
        };
        let count = num("count")? as u64;
        if count == 0 {
            return Ok(());
        }
        let (min, max) = (num("min")? as u64, num("max")? as u64);
        self.min = if self.count == 0 { min } else { self.min.min(min) };
        self.max = self.max.max(max);
        self.count += count;
        self.sum += num("sum")? as i128;
        let buckets = h
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or_else(|| "histogram missing buckets".to_string())?;
        for b in buckets {
            let pair = b.as_arr().filter(|p| p.len() == 2);
            let (lower, n) = match pair {
                Some(p) => match (p[0].as_f64(), p[1].as_f64()) {
                    (Some(l), Some(n)) => (l as u64, n as u64),
                    _ => return Err("non-numeric histogram bucket".into()),
                },
                None => return Err("malformed histogram bucket".into()),
            };
            *self.buckets.entry(lower).or_insert(0) += n;
        }
        Ok(())
    }

    /// Nearest-rank quantile over the merged buckets, clamped to the
    /// observed `[min, max]` (mirrors the telemetry histogram).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        if rank == self.count {
            // The top rank is the recorded maximum, which is tracked
            // exactly — no need to settle for its bucket's lower bound.
            return self.max;
        }
        let mut seen = 0u64;
        for (&lower, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return lower.max(self.min).min(self.max);
            }
        }
        self.max
    }
}

/// The merged, deterministic view of one scenario's repetitions.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MergedScenario {
    /// Counter name → value per repetition, in rep order.
    pub counters: BTreeMap<String, Vec<i64>>,
    /// Histogram name → merged histogram.
    pub histograms: BTreeMap<String, MergedHistogram>,
    /// Reports folded in.
    pub reports: u64,
}

impl MergedScenario {
    /// Folds one parsed `hermes-bench-report/1` document in. Reports must
    /// be appended in repetition order.
    pub fn absorb(&mut self, doc: &Json) -> Result<(), String> {
        let schema = doc.get("schema").and_then(Json::as_str);
        if schema != Some("hermes-bench-report/1") {
            return Err(format!(
                "unsupported report schema {:?} (want hermes-bench-report/1)",
                schema.unwrap_or("<missing>")
            ));
        }
        let Some(Json::Obj(counters)) = doc.get("counters") else {
            return Err("report has no counters object".into());
        };
        for (name, v) in counters {
            let value = v
                .as_f64()
                .ok_or_else(|| format!("counter {name:?} is not numeric"))?;
            self.counters.entry(name.clone()).or_default().push(value as i64);
        }
        let Some(Json::Obj(histograms)) = doc.get("histograms") else {
            return Err("report has no histograms object".into());
        };
        for (name, h) in histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .absorb(h)
                .map_err(|e| format!("histogram {name:?}: {e}"))?;
        }
        self.reports += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_util::json::ToJson;

    fn hist(count: u64, sum: i64, min: u64, max: u64, buckets: &[(u64, u64)]) -> Json {
        Json::obj([
            ("count", count.to_json()),
            ("sum", Json::Int(sum as i128)),
            ("min", min.to_json()),
            ("max", max.to_json()),
            (
                "buckets",
                Json::Arr(
                    buckets
                        .iter()
                        .map(|&(l, n)| Json::Arr(vec![l.to_json(), n.to_json()]))
                        .collect(),
                ),
            ),
        ])
    }

    fn report(counters: &[(&str, i64)], histograms: &[(&str, Json)]) -> Json {
        Json::obj([
            ("schema", "hermes-bench-report/1".to_json()),
            (
                "counters",
                Json::obj(counters.iter().map(|&(k, v)| (k, Json::Int(v as i128)))),
            ),
            (
                "histograms",
                Json::obj(histograms.iter().map(|(k, v)| (*k, v.clone()))),
            ),
        ])
    }

    #[test]
    fn counters_collect_in_rep_order() {
        let mut m = MergedScenario::default();
        m.absorb(&report(&[("a", 10), ("b", 1)], &[])).unwrap();
        m.absorb(&report(&[("a", 12)], &[])).unwrap();
        assert_eq!(m.counters["a"], vec![10, 12]);
        assert_eq!(m.counters["b"], vec![1]);
        assert_eq!(m.reports, 2);
    }

    #[test]
    fn histograms_merge_by_bucket_sum() {
        let mut m = MergedScenario::default();
        let h1 = hist(3, 60, 10, 30, &[(8, 2), (24, 1)]);
        let h2 = hist(2, 50, 20, 30, &[(16, 1), (24, 1)]);
        m.absorb(&report(&[], &[("lat", h1)])).unwrap();
        m.absorb(&report(&[], &[("lat", h2)])).unwrap();
        let merged = &m.histograms["lat"];
        assert_eq!(merged.count, 5);
        assert_eq!(merged.sum, 110);
        assert_eq!((merged.min, merged.max), (10, 30));
        assert_eq!(merged.buckets[&24], 2);
        // Nearest-rank p50 of 5 values: rank 3 → second bucket (16),
        // clamped into [min, max].
        assert_eq!(merged.quantile(0.5), 16);
        assert_eq!(merged.quantile(1.0), 30);
        assert_eq!(merged.quantile(0.0), 10);
    }

    #[test]
    fn empty_histogram_reports_are_no_ops() {
        let mut m = MergedScenario::default();
        m.absorb(&report(&[], &[("lat", hist(0, 0, 0, 0, &[]))]))
            .unwrap();
        assert_eq!(m.histograms["lat"].count, 0);
        assert_eq!(m.histograms["lat"].quantile(0.5), 0);
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let mut m = MergedScenario::default();
        let mut doc = report(&[], &[]);
        if let Json::Obj(pairs) = &mut doc {
            pairs[0].1 = "hermes-bench-report/9".to_json();
        }
        let e = m.absorb(&doc).unwrap_err();
        assert!(e.contains("unsupported report schema"), "{e}");
    }

    #[test]
    fn malformed_buckets_are_rejected() {
        let mut m = MergedScenario::default();
        let bad = Json::obj([
            ("count", 1u64.to_json()),
            ("sum", Json::Int(1)),
            ("min", 1u64.to_json()),
            ("max", 1u64.to_json()),
            ("buckets", Json::Arr(vec![Json::Str("x".into())])),
        ]);
        let e = m.absorb(&report(&[], &[("lat", bad)])).unwrap_err();
        assert!(e.contains("malformed histogram bucket"), "{e}");
    }
}
