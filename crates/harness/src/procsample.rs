//! `/proc/<pid>` sampling for child RSS and CPU usage.
//!
//! Linux-only by construction (the workspace targets Linux CI runners);
//! on other platforms — or once the pid vanishes — sampling returns
//! `None` and the harness simply reports zeros rather than failing the
//! run. Readings are taken from *outside* the child, so they need no
//! cooperation from (or modification of) the measured binaries.

use std::path::PathBuf;

/// Assumed page size for `/proc/<pid>/statm` (x86-64/aarch64 default;
/// fine for relative comparisons, which is all the perf gate does).
pub const PAGE_BYTES: u64 = 4096;

/// Assumed `USER_HZ` for `/proc/<pid>/stat` utime/stime ticks.
pub const TICKS_PER_SEC: u64 = 100;

/// One point-in-time reading of a child process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcSample {
    /// Resident set size in bytes (`statm` field 2 × [`PAGE_BYTES`]).
    pub rss_bytes: u64,
    /// Cumulative user+system CPU ticks (`stat` fields 14+15).
    pub cpu_ticks: u64,
}

/// Running aggregate over a child's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcUsage {
    /// Peak RSS seen across samples, bytes.
    pub max_rss_bytes: u64,
    /// Last observed cumulative CPU ticks (monotone, so last ≈ total; a
    /// child that exits between samples under-reports by one interval).
    pub cpu_ticks: u64,
    /// Number of successful samples taken.
    pub samples: u64,
}

impl ProcUsage {
    /// Folds one sample into the aggregate.
    pub fn absorb(&mut self, s: ProcSample) {
        self.max_rss_bytes = self.max_rss_bytes.max(s.rss_bytes);
        self.cpu_ticks = self.cpu_ticks.max(s.cpu_ticks);
        self.samples += 1;
    }

    /// CPU time in milliseconds under the [`TICKS_PER_SEC`] assumption.
    pub fn cpu_ms(&self) -> f64 {
        self.cpu_ticks as f64 * 1000.0 / TICKS_PER_SEC as f64
    }
}

/// Samples a live pid. `None` when `/proc` is unavailable or the process
/// already exited.
pub fn sample_pid(pid: u32) -> Option<ProcSample> {
    let base = PathBuf::from(format!("/proc/{pid}"));
    let statm = std::fs::read_to_string(base.join("statm")).ok()?;
    let rss_pages: u64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    let stat = std::fs::read_to_string(base.join("stat")).ok()?;
    // Field 2 (comm) may contain spaces; everything after the *last* ')'
    // is whitespace-separated. utime/stime are stat fields 14/15, i.e.
    // indices 11/12 of the post-comm tail.
    let tail = stat.rsplit_once(')')?.1;
    let mut fields = tail.split_whitespace();
    let utime: u64 = fields.nth(11)?.parse().ok()?;
    let stime: u64 = fields.next()?.parse().ok()?;
    Some(ProcSample {
        rss_bytes: rss_pages * PAGE_BYTES,
        cpu_ticks: utime + stime,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_own_process() {
        // Our own pid always has a /proc entry on Linux CI.
        let me = std::process::id();
        let Some(s) = sample_pid(me) else {
            // Non-Linux dev box: sampling is best-effort by design.
            return;
        };
        assert!(s.rss_bytes > 0, "a running process has resident pages");
    }

    #[test]
    fn dead_pid_yields_none() {
        // Pid numbers are bounded by /proc/sys/kernel/pid_max (< 2^22 by
        // default); u32::MAX is never a live pid.
        assert_eq!(sample_pid(u32::MAX), None);
    }

    #[test]
    fn usage_tracks_peak_and_last() {
        let mut u = ProcUsage::default();
        u.absorb(ProcSample { rss_bytes: 10, cpu_ticks: 1 });
        u.absorb(ProcSample { rss_bytes: 30, cpu_ticks: 5 });
        u.absorb(ProcSample { rss_bytes: 20, cpu_ticks: 9 });
        assert_eq!(u.max_rss_bytes, 30);
        assert_eq!(u.cpu_ticks, 9);
        assert_eq!(u.samples, 3);
        assert!((u.cpu_ms() - 90.0).abs() < 1e-9);
    }
}
