//! Spawning and supervising the per-repetition child processes.
//!
//! Each repetition is one OS process: the scenario's release binary,
//! launched with the environment [`hermes_util::scenario::Scenario::env`]
//! derives (seeded per repetition), `--out` pointed at a per-rep report
//! path, stdout discarded and stderr captured to a side file for
//! diagnosis. While the child runs the harness polls `/proc` for RSS/CPU
//! with an adaptive backoff (1 ms → 50 ms), so millisecond-scale smoke
//! binaries still get a sample and hour-scale runs are not busy-polled.

use crate::merge::MergedScenario;
use crate::procsample::{self, ProcUsage};
use hermes_util::bench::Stopwatch;
use hermes_util::json::Json;
use hermes_util::scenario::{Matrix, Scenario};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// What to run: the matrix, where the binaries live, where output goes.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Path of the scenario matrix file.
    pub matrix_path: PathBuf,
    /// Directory holding the release binaries (`target/release`).
    pub bin_dir: PathBuf,
    /// Output directory for per-rep reports and the matrix summary.
    pub out_dir: PathBuf,
    /// Subset of scenario names to run; `None` runs the whole matrix.
    pub scenarios: Option<Vec<String>>,
    /// Overrides every scenario's `runs` when set (CI smoke uses 3).
    pub runs_override: Option<u32>,
}

/// The outcome of one repetition.
#[derive(Clone, Debug)]
pub struct RepResult {
    /// Repetition index (0-based; seeds derive from it).
    pub rep: u32,
    /// Child exit code (`None` when killed by a signal).
    pub exit_code: Option<i32>,
    /// Wall-clock from spawn to reaped, milliseconds.
    pub wall_ms: f64,
    /// Peak resident set observed, bytes.
    pub max_rss_bytes: u64,
    /// CPU time observed at the last `/proc` sample, milliseconds.
    pub cpu_ms: f64,
    /// `/proc` samples taken.
    pub samples: u64,
    /// Why this repetition does not count (nonzero exit, missing or
    /// malformed report). `None` for a clean rep.
    pub error: Option<String>,
}

impl RepResult {
    /// `true` when the repetition ran and reported cleanly.
    pub fn ok(&self) -> bool {
        self.error.is_none()
    }
}

/// One scenario's repetitions plus their merged report view.
#[derive(Clone, Debug)]
pub struct ScenarioRun {
    /// Scenario name.
    pub name: String,
    /// Binary the scenario ran.
    pub bin: String,
    /// Repetitions requested.
    pub runs: u32,
    /// Per-repetition outcomes, in rep order.
    pub reps: Vec<RepResult>,
    /// Merged BENCH-report view over the clean repetitions.
    pub merged: MergedScenario,
}

impl ScenarioRun {
    /// Repetitions that failed (exit, missing or malformed report).
    pub fn failures(&self) -> u64 {
        self.reps.iter().filter(|r| !r.ok()).count() as u64
    }
}

/// The whole matrix run.
#[derive(Clone, Debug)]
pub struct MatrixRun {
    /// Scenario results in matrix (file) order.
    pub scenarios: Vec<ScenarioRun>,
}

impl MatrixRun {
    /// Total failed repetitions across scenarios.
    pub fn failures(&self) -> u64 {
        self.scenarios.iter().map(ScenarioRun::failures).sum()
    }
}

/// Runs the configured slice of the matrix. Configuration errors (bad
/// matrix, unknown scenario name, missing binary) abort with `Err`;
/// individual repetition failures are recorded in the result and counted
/// by [`MatrixRun::failures`].
pub fn run_matrix(cfg: &RunConfig) -> Result<MatrixRun, String> {
    let matrix = Matrix::load(&cfg.matrix_path).map_err(|e| e.to_string())?;
    let selected: Vec<&Scenario> = match &cfg.scenarios {
        None => matrix.scenarios.iter().collect(),
        Some(names) => names
            .iter()
            .map(|n| {
                matrix.get(n).ok_or_else(|| {
                    format!("scenario {n:?} not in {}", cfg.matrix_path.display())
                })
            })
            .collect::<Result<_, _>>()?,
    };
    let mut out = MatrixRun { scenarios: Vec::new() };
    for sc in selected {
        let bin = cfg.bin_dir.join(&sc.bin);
        if !bin.is_file() {
            return Err(format!(
                "scenario {:?}: binary {} not found (build with --release first)",
                sc.name,
                bin.display()
            ));
        }
        let runs = cfg.runs_override.unwrap_or(sc.runs);
        hermes_telemetry::counter("harness.scenarios", 1);
        let mut run = ScenarioRun {
            name: sc.name.clone(),
            bin: sc.bin.clone(),
            runs,
            reps: Vec::new(),
            merged: MergedScenario::default(),
        };
        let scenario_dir = cfg.out_dir.join(&sc.name);
        std::fs::create_dir_all(&scenario_dir)
            .map_err(|e| format!("cannot create {}: {e}", scenario_dir.display()))?;
        for rep in 0..runs {
            hermes_telemetry::counter("harness.reps", 1);
            let mut result = run_rep(&bin, sc, &cfg.matrix_path, rep, &scenario_dir)?;
            if result.error.is_none() && sc.trace {
                match read_report(&rep_report_path(&scenario_dir, rep)) {
                    Ok(doc) => match run.merged.absorb(&doc) {
                        Ok(()) => hermes_telemetry::counter("harness.reports_merged", 1),
                        Err(e) => result.error = Some(e),
                    },
                    Err(e) => result.error = Some(e),
                }
            }
            if result.error.is_some() {
                hermes_telemetry::counter("harness.rep_failures", 1);
            }
            run.reps.push(result);
        }
        out.scenarios.push(run);
    }
    Ok(out)
}

/// The per-rep BENCH report path inside a scenario's output directory.
pub fn rep_report_path(scenario_dir: &Path, rep: u32) -> PathBuf {
    scenario_dir.join(format!("rep{rep}.json"))
}

fn read_report(path: &Path) -> Result<Json, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("no BENCH report at {}: {e}", path.display()))?;
    Json::parse(&text).map_err(|e| format!("malformed BENCH report {}: {e:?}", path.display()))
}

fn run_rep(
    bin: &Path,
    sc: &Scenario,
    matrix_path: &Path,
    rep: u32,
    scenario_dir: &Path,
) -> Result<RepResult, String> {
    let report_path = rep_report_path(scenario_dir, rep);
    let stderr_path = scenario_dir.join(format!("rep{rep}.stderr"));
    let stderr_file = std::fs::File::create(&stderr_path)
        .map_err(|e| format!("cannot create {}: {e}", stderr_path.display()))?;
    let mut cmd = Command::new(bin);
    cmd.arg("--out")
        .arg(&report_path)
        .stdout(Stdio::null())
        .stderr(Stdio::from(stderr_file));
    let (set, remove) = sc.env(Some(&matrix_path.to_string_lossy()), rep);
    for (k, v) in set {
        cmd.env(k, v);
    }
    for k in remove {
        cmd.env_remove(k);
    }
    // Children must not inherit stray workspace knobs, and their reports
    // must not embed the ambient git revision (the canonical summary is
    // compared byte-wise across runs).
    cmd.env_remove("HERMES_OUT");
    cmd.env("HERMES_GIT_REV", "harness");
    let sw = Stopwatch::start();
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("cannot spawn {}: {e}", bin.display()))?;
    let pid = child.id();
    let mut usage = ProcUsage::default();
    let mut sleep_ms = 1u64;
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {}
            Err(e) => {
                let _ = child.kill();
                let _ = child.wait();
                return Err(format!("waiting on {}: {e}", bin.display()));
            }
        }
        if let Some(s) = procsample::sample_pid(pid) {
            usage.absorb(s);
        }
        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
        sleep_ms = (sleep_ms + sleep_ms / 4 + 1).min(50);
    };
    let wall_ms = sw.elapsed().as_secs_f64() * 1000.0;
    let error = if status.success() {
        None
    } else {
        let diag = first_stderr_line(&stderr_path);
        Some(match status.code() {
            Some(c) => format!("exit code {c}{diag}"),
            None => format!("killed by signal{diag}"),
        })
    };
    Ok(RepResult {
        rep,
        exit_code: status.code(),
        wall_ms,
        max_rss_bytes: usage.max_rss_bytes,
        cpu_ms: usage.cpu_ms(),
        samples: usage.samples,
        error,
    })
}

fn first_stderr_line(path: &Path) -> String {
    match std::fs::read_to_string(path) {
        Ok(text) => match text.lines().next() {
            Some(line) => format!(": {line}"),
            None => String::new(),
        },
        Err(_) => String::new(),
    }
}
