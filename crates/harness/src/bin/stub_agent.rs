//! A deterministic stand-in for the `exp_*` binaries, used by the
//! harness fixture tests.
//!
//! The stub loads its scenario through the exact same shared loader the
//! real binaries use (`HERMES_SCENARIO_FILE` + `HERMES_SCENARIO` via
//! [`hermes_util::scenario`]), so the fixture exercises the full
//! config-file → env → child → config-file round trip. Behavior knobs:
//!
//! * `knobs.stub_sleep_ms` — sleep before reporting (default 0);
//! * `knobs.stub_value` — counter value to report (default 7);
//! * `knobs.stub_exit` — exit code (default 0; nonzero after writing);
//! * `knobs.stub_malformed` — emit truncated JSON (default false).
//!
//! The canned report is a minimal `hermes-bench-report/1`: one counter
//! keyed by the stub value, one per-rep counter derived from
//! `HERMES_FAULT_SEED` (proving the harness seeds each repetition), and
//! one histogram.

#![forbid(unsafe_code)]

use hermes_util::json::{Json, ToJson};
use hermes_util::scenario::{Matrix, Scenario};
use std::path::Path;

fn scenario_from_env() -> Result<Scenario, String> {
    let file = std::env::var("HERMES_SCENARIO_FILE")
        .map_err(|_| "stub_agent requires HERMES_SCENARIO_FILE".to_string())?;
    let name = std::env::var("HERMES_SCENARIO")
        .map_err(|_| "stub_agent requires HERMES_SCENARIO".to_string())?;
    let matrix = Matrix::load(Path::new(&file)).map_err(|e| e.to_string())?;
    matrix
        .get(&name)
        .cloned()
        .ok_or_else(|| format!("scenario {name:?} not found in {file}"))
}

fn out_path() -> Option<String> {
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out = args.next();
        } else if let Some(v) = a.strip_prefix("--out=") {
            out = Some(v.to_string());
        }
    }
    out
}

fn canned_report(sc: &Scenario) -> Json {
    let value = sc.knob_u64("stub_value", 7);
    let seed: u64 = std::env::var("HERMES_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    Json::obj([
        ("schema", "hermes-bench-report/1".to_json()),
        ("experiment", "stub".to_json()),
        ("git_rev", std::env::var("HERMES_GIT_REV").unwrap_or_default().to_json()),
        ("telemetry_enabled", true.to_json()),
        ("meta", Json::obj([("scenario", sc.name.as_str().to_json())])),
        (
            "counters",
            Json::obj([
                ("stub.value", value.to_json()),
                ("stub.seed", seed.to_json()),
            ]),
        ),
        ("gauges", Json::Obj(Vec::new())),
        (
            "histograms",
            Json::obj([(
                "stub.lat",
                Json::obj([
                    ("count", value.to_json()),
                    ("sum", Json::Int((value * 4) as i128)),
                    ("min", 4u64.to_json()),
                    ("max", 4u64.to_json()),
                    ("p50", 4u64.to_json()),
                    ("p95", 4u64.to_json()),
                    ("p99", 4u64.to_json()),
                    (
                        "buckets",
                        Json::Arr(vec![Json::Arr(vec![4u64.to_json(), value.to_json()])]),
                    ),
                ]),
            )]),
        ),
        ("series", Json::Obj(Vec::new())),
        ("spans", Json::Arr(vec![])),
        ("trace", Json::Arr(vec![])),
    ])
}

fn main() -> std::process::ExitCode {
    let sc = match scenario_from_env() {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("stub_agent: error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    let sleep_ms = sc.knob_u64("stub_sleep_ms", 0);
    if sleep_ms > 0 {
        std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
    }
    if let Some(out) = out_path() {
        let body = if sc.knob_bool("stub_malformed", false) {
            "{\"schema\":\"hermes-bench-report/1\",".to_string()
        } else {
            canned_report(&sc).to_string()
        };
        if let Err(e) = std::fs::write(&out, body) {
            eprintln!("stub_agent: error: cannot write {out}: {e}");
            return std::process::ExitCode::FAILURE;
        }
    }
    let code = sc.knob_u64("stub_exit", 0);
    if code != 0 {
        eprintln!("stub_agent: injected failure (stub_exit = {code})");
        return std::process::ExitCode::from((code & 0xff) as u8);
    }
    std::process::ExitCode::SUCCESS
}
