//! The `hermes-matrix-report/1` document writer.
//!
//! Two flavors share one layout:
//!
//! * **full** (`kind: "full"`) — everything, including the `measured`
//!   section (wall-clock, RSS, CPU) that jitters run to run. This is
//!   what `scripts/perfgate.py wallclock` reads.
//! * **canonical** (`kind: "canonical"`) — the `measured` section is
//!   omitted, leaving only data derived from the children's BENCH
//!   reports and exit statuses. For a fixed matrix and seeds the
//!   canonical document is **byte-identical across runs**; the
//!   determinism tests compare these bytes.
//!
//! Keys appear in a fixed order so documents diff cleanly across
//! commits, mirroring `hermes-bench-report/1`.

use crate::merge::MergedScenario;
use crate::run::{MatrixRun, ScenarioRun};
use hermes_util::json::{Json, ToJson};
use hermes_util::stats::{quantile_sorted, sort_samples};

/// Matrix report schema identifier; bump on any layout change.
pub const SCHEMA: &str = "hermes-matrix-report/1";

/// Builds the report document. `canonical` selects the byte-stable
/// flavor (no `measured` section).
pub fn build(run: &MatrixRun, canonical: bool) -> Json {
    Json::obj([
        ("schema", SCHEMA.to_json()),
        (
            "kind",
            if canonical { "canonical" } else { "full" }.to_json(),
        ),
        (
            "scenarios",
            Json::Arr(run.scenarios.iter().map(|s| scenario_json(s, canonical)).collect()),
        ),
    ])
}

fn scenario_json(s: &ScenarioRun, canonical: bool) -> Json {
    let errors: Vec<Json> = s
        .reps
        .iter()
        .filter_map(|r| {
            r.error
                .as_ref()
                .map(|e| format!("rep {}: {e}", r.rep).to_json())
        })
        .collect();
    let mut pairs = vec![
        ("name".to_string(), s.name.to_json()),
        ("bin".to_string(), s.bin.to_json()),
        ("runs".to_string(), (s.runs as u64).to_json()),
        (
            "clean_reps".to_string(),
            ((s.runs as u64) - s.failures()).to_json(),
        ),
        ("errors".to_string(), Json::Arr(errors)),
        ("merged".to_string(), merged_json(&s.merged)),
    ];
    if !canonical {
        pairs.push(("measured".to_string(), measured_json(s)));
    }
    Json::Obj(pairs)
}

fn merged_json(m: &MergedScenario) -> Json {
    let counters = Json::obj(m.counters.iter().map(|(name, reps)| {
        let mut vals: Vec<f64> = reps.iter().map(|&v| v as f64).collect();
        sort_samples(&mut vals);
        let equal = reps.windows(2).all(|w| w[0] == w[1]);
        (
            name.clone(),
            Json::obj([
                ("reps", Json::Arr(reps.iter().map(|&v| Json::Int(v as i128)).collect())),
                ("min", quantile_sorted(&vals, 0.0).to_json()),
                ("p50", quantile_sorted(&vals, 0.5).to_json()),
                ("max", quantile_sorted(&vals, 1.0).to_json()),
                ("equal_across_reps", equal.to_json()),
            ]),
        )
    }));
    let histograms = Json::obj(m.histograms.iter().map(|(name, h)| {
        (
            name.clone(),
            Json::obj([
                ("count", h.count.to_json()),
                ("sum", Json::Int(h.sum)),
                ("min", h.min.to_json()),
                ("max", h.max.to_json()),
                ("p50", h.quantile(0.50).to_json()),
                ("p95", h.quantile(0.95).to_json()),
                ("p99", h.quantile(0.99).to_json()),
            ]),
        )
    }));
    Json::obj([
        ("reports", m.reports.to_json()),
        ("counters", counters),
        ("histograms", histograms),
    ])
}

fn measured_json(s: &ScenarioRun) -> Json {
    let wall: Vec<f64> = s.reps.iter().map(|r| r.wall_ms).collect();
    let rss: Vec<f64> = s.reps.iter().map(|r| r.max_rss_bytes as f64).collect();
    let cpu: Vec<f64> = s.reps.iter().map(|r| r.cpu_ms).collect();
    Json::obj([
        ("wall_ms", series_json(&wall, true)),
        ("max_rss_bytes", series_json(&rss, false)),
        ("cpu_ms", series_json(&cpu, false)),
    ])
}

/// Summary of one measured series: per-rep values, nearest-rank
/// percentiles, and (for wall-clock) a normal-approximation 95%
/// confidence half-width on the mean.
fn series_json(values: &[f64], with_ci: bool) -> Json {
    let mut sorted = values.to_vec();
    sort_samples(&mut sorted);
    let mut pairs = vec![
        (
            "reps".to_string(),
            Json::Arr(values.iter().map(|v| v.to_json()).collect()),
        ),
        ("mean".to_string(), mean(values).to_json()),
        ("p50".to_string(), quantile_sorted(&sorted, 0.5).to_json()),
        ("p90".to_string(), quantile_sorted(&sorted, 0.9).to_json()),
        ("max".to_string(), quantile_sorted(&sorted, 1.0).to_json()),
    ];
    if with_ci {
        pairs.push(("ci95_halfwidth".to_string(), ci95_halfwidth(values).to_json()));
    }
    Json::Obj(pairs)
}

fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// 1.96·s/√n with the sample standard deviation; 0 for n < 2.
pub fn ci95_halfwidth(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (n - 1) as f64;
    1.96 * var.sqrt() / (n as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::RepResult;

    fn rep(rep: u32, wall_ms: f64, error: Option<&str>) -> RepResult {
        RepResult {
            rep,
            exit_code: Some(if error.is_some() { 1 } else { 0 }),
            wall_ms,
            max_rss_bytes: 1000 + rep as u64,
            cpu_ms: wall_ms / 2.0,
            samples: 1,
            error: error.map(str::to_string),
        }
    }

    fn one_scenario_run() -> MatrixRun {
        let mut merged = MergedScenario::default();
        merged.counters.insert("x.n".into(), vec![5, 5, 7]);
        merged.reports = 3;
        MatrixRun {
            scenarios: vec![ScenarioRun {
                name: "s".into(),
                bin: "stub".into(),
                runs: 3,
                reps: vec![rep(0, 10.0, None), rep(1, 12.0, None), rep(2, 11.0, Some("exit code 3"))],
                merged,
            }],
        }
    }

    #[test]
    fn canonical_excludes_measured_and_is_stable() {
        let run = one_scenario_run();
        let canon = build(&run, true);
        let full = build(&run, false);
        assert_eq!(canon.get("kind").and_then(Json::as_str), Some("canonical"));
        let sc = |doc: &Json| doc.get("scenarios").and_then(Json::as_arr).map(|a| a[0].clone());
        let c = sc(&canon).expect("scenario present");
        let f = sc(&full).expect("scenario present");
        assert!(c.get("measured").is_none(), "canonical must drop measured");
        assert!(f.get("measured").is_some());
        assert_eq!(c.get("clean_reps").and_then(Json::as_f64), Some(2.0));
        // Same input → same bytes: the determinism contract.
        assert_eq!(build(&run, true).to_string(), canon.to_string());
    }

    #[test]
    fn counter_summary_has_percentiles_and_equality_flag() {
        let doc = build(&one_scenario_run(), true);
        let counters = doc
            .get("scenarios")
            .and_then(Json::as_arr)
            .and_then(|a| a[0].get("merged"))
            .and_then(|m| m.get("counters"))
            .cloned()
            .expect("counters present");
        let xn = counters.get("x.n").expect("x.n summarized");
        assert_eq!(xn.get("p50").and_then(Json::as_f64), Some(5.0));
        assert_eq!(xn.get("max").and_then(Json::as_f64), Some(7.0));
        assert_eq!(
            xn.get("equal_across_reps"),
            Some(&Json::Bool(false)),
            "5,5,7 is not rep-stable"
        );
    }

    #[test]
    fn ci_halfwidth_basics() {
        assert_eq!(ci95_halfwidth(&[]), 0.0);
        assert_eq!(ci95_halfwidth(&[3.0]), 0.0);
        assert_eq!(ci95_halfwidth(&[5.0, 5.0, 5.0]), 0.0);
        let hw = ci95_halfwidth(&[10.0, 12.0, 14.0]);
        assert!(hw > 0.0 && hw < 4.0, "hw {hw}");
    }
}
