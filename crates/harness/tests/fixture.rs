//! Harness fixture tests: the orchestrator against the deterministic
//! `stub_agent` binary (canned BENCH JSON, knob-driven sleep/exit/
//! malformed behavior), per ISSUE 6.
//!
//! The central assertion: for a fixed matrix and seeds, the canonical
//! `hermes-matrix-report/1` summary is **byte-identical** across runs —
//! process spawning, /proc sampling and report merging introduce no
//! nondeterminism into the merged view.

use hermes_harness::{report, run_matrix, RunConfig};
use hermes_util::json::Json;
use std::path::{Path, PathBuf};

const MATRIX: &str = r#"
schema = "hermes-scenario/1"

[scenario.stub-ok]
bin = "stub_agent"
runs = 3
fault_seed = 5
trace = true
knobs.stub_value = 9

[scenario.stub-slow]
bin = "stub_agent"
runs = 2
trace = true
knobs.stub_sleep_ms = 30

[scenario.stub-bad-exit]
bin = "stub_agent"
runs = 2
trace = true
knobs.stub_exit = 3

[scenario.stub-malformed]
bin = "stub_agent"
runs = 2
trace = true
knobs.stub_malformed = true
"#;

struct Fixture {
    base: PathBuf,
    matrix_path: PathBuf,
    bin_dir: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Fixture {
        let base = std::env::temp_dir().join(format!(
            "hermes_harness_fixture_{}_{tag}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&base);
        std::fs::create_dir_all(&base).expect("create fixture dir");
        let matrix_path = base.join("matrix.toml");
        std::fs::write(&matrix_path, MATRIX).expect("write matrix");
        let stub = PathBuf::from(env!("CARGO_BIN_EXE_stub_agent"));
        Fixture {
            base,
            matrix_path,
            bin_dir: stub.parent().expect("stub binary has a parent dir").to_path_buf(),
        }
    }

    fn config(&self, out: &str, scenarios: &[&str]) -> RunConfig {
        RunConfig {
            matrix_path: self.matrix_path.clone(),
            bin_dir: self.bin_dir.clone(),
            out_dir: self.base.join(out),
            scenarios: Some(scenarios.iter().map(|s| s.to_string()).collect()),
            runs_override: None,
        }
    }
}

fn counter<'a>(doc: &'a Json, scenario_idx: usize, name: &str) -> &'a Json {
    doc.get("scenarios")
        .and_then(Json::as_arr)
        .and_then(|a| a.get(scenario_idx))
        .and_then(|s| s.get("merged"))
        .and_then(|m| m.get("counters"))
        .and_then(|c| c.get(name))
        .unwrap_or_else(|| panic!("counter {name} missing from scenario {scenario_idx}"))
}

#[test]
fn canonical_summary_is_byte_identical_across_seeded_runs() {
    let fx = Fixture::new("determinism");
    let mut summaries = Vec::new();
    for out in ["run_a", "run_b"] {
        let run = run_matrix(&fx.config(out, &["stub-ok", "stub-slow"])).expect("matrix runs");
        assert_eq!(run.failures(), 0, "clean scenarios must not fail");
        summaries.push(report::build(&run, true).to_string());
        // The full report carries the measured section the canonical
        // one must omit.
        let full = report::build(&run, false);
        let measured = full
            .get("scenarios")
            .and_then(Json::as_arr)
            .and_then(|a| a[0].get("measured"))
            .cloned()
            .expect("full report has measured section");
        assert!(measured.get("wall_ms").is_some());
        assert!(measured.get("max_rss_bytes").is_some());
        assert!(measured.get("cpu_ms").is_some());
    }
    assert_eq!(
        summaries[0], summaries[1],
        "canonical summaries must be byte-identical across identical seeded runs"
    );
}

#[test]
fn merged_counters_reflect_per_rep_seeding() {
    let fx = Fixture::new("seeding");
    let run = run_matrix(&fx.config("out", &["stub-ok"])).expect("matrix runs");
    let doc = report::build(&run, true);
    // fault_seed = 5 → reps see HERMES_FAULT_SEED 5, 6, 7.
    let seed = counter(&doc, 0, "stub.seed");
    assert_eq!(
        seed.get("reps").and_then(Json::as_arr).map(<[Json]>::len),
        Some(3)
    );
    assert_eq!(seed.get("min").and_then(Json::as_f64), Some(5.0));
    assert_eq!(seed.get("p50").and_then(Json::as_f64), Some(6.0));
    assert_eq!(seed.get("max").and_then(Json::as_f64), Some(7.0));
    assert_eq!(seed.get("equal_across_reps"), Some(&Json::Bool(false)));
    // The knob-driven counter is rep-stable.
    let value = counter(&doc, 0, "stub.value");
    assert_eq!(value.get("p50").and_then(Json::as_f64), Some(9.0));
    assert_eq!(value.get("equal_across_reps"), Some(&Json::Bool(true)));
    // Histograms merge across the 3 reps: 3 × 9 recorded values.
    let hist = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .and_then(|a| a[0].get("merged"))
        .and_then(|m| m.get("histograms"))
        .and_then(|h| h.get("stub.lat"))
        .cloned()
        .expect("merged histogram present");
    assert_eq!(hist.get("count").and_then(Json::as_f64), Some(27.0));
    assert_eq!(hist.get("p50").and_then(Json::as_f64), Some(4.0));
}

#[test]
fn wall_clock_and_exit_are_observed() {
    let fx = Fixture::new("wall");
    let run = run_matrix(&fx.config("out", &["stub-slow"])).expect("matrix runs");
    let s = &run.scenarios[0];
    assert_eq!(s.reps.len(), 2);
    for r in &s.reps {
        assert!(r.ok(), "rep {}: {:?}", r.rep, r.error);
        assert_eq!(r.exit_code, Some(0));
        assert!(
            r.wall_ms >= 25.0,
            "stub sleeps 30ms but wall was {}ms",
            r.wall_ms
        );
    }
}

#[test]
fn nonzero_exit_is_a_rep_failure() {
    let fx = Fixture::new("badexit");
    let run = run_matrix(&fx.config("out", &["stub-bad-exit"])).expect("matrix runs");
    assert_eq!(run.failures(), 2);
    let s = &run.scenarios[0];
    for r in &s.reps {
        let e = r.error.as_deref().expect("rep must carry an error");
        assert!(e.contains("exit code 3"), "error {e:?}");
        assert_eq!(r.exit_code, Some(3));
    }
    let doc = report::build(&run, true);
    let sc = doc.get("scenarios").and_then(Json::as_arr).map(|a| a[0].clone()).expect("scenario");
    assert_eq!(sc.get("clean_reps").and_then(Json::as_f64), Some(0.0));
    let errors = sc.get("errors").and_then(Json::as_arr).expect("errors array");
    assert_eq!(errors.len(), 2);
}

#[test]
fn malformed_report_is_a_rep_failure() {
    let fx = Fixture::new("malformed");
    let run = run_matrix(&fx.config("out", &["stub-malformed"])).expect("matrix runs");
    assert_eq!(run.failures(), 2);
    let e = run.scenarios[0].reps[0].error.as_deref().expect("error recorded");
    assert!(e.contains("malformed BENCH report"), "error {e:?}");
    // Nothing malformed reaches the merged view.
    assert_eq!(run.scenarios[0].merged.reports, 0);
}

#[test]
fn configuration_errors_abort() {
    let fx = Fixture::new("config");
    // Unknown scenario name.
    let e = run_matrix(&fx.config("out", &["no-such-scenario"])).unwrap_err();
    assert!(e.contains("no-such-scenario"), "{e}");
    // Missing binary.
    let missing = fx.base.join("missing.toml");
    std::fs::write(
        &missing,
        "schema = \"hermes-scenario/1\"\n[scenario.ghost]\nbin = \"no_such_binary\"\n",
    )
    .expect("write matrix");
    let mut cfg = fx.config("out", &["ghost"]);
    cfg.matrix_path = missing;
    let e = run_matrix(&cfg).unwrap_err();
    assert!(e.contains("no_such_binary"), "{e}");
}

#[test]
fn orchestrator_binary_end_to_end() {
    let fx = Fixture::new("cli");
    let out = fx.base.join("cli_out");
    let run = |scenarios: &str| {
        std::process::Command::new(env!("CARGO_BIN_EXE_hermes-harness"))
            .args(["--matrix"])
            .arg(&fx.matrix_path)
            .args(["--bin-dir"])
            .arg(&fx.bin_dir)
            .args(["--out"])
            .arg(&out)
            .args(["--scenarios", scenarios])
            .output()
            .expect("spawn hermes-harness")
    };
    let ok = run("stub-ok");
    assert!(
        ok.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&ok.stderr)
    );
    for name in ["matrix_report.json", "matrix_summary.json"] {
        let text = std::fs::read_to_string(out.join(name))
            .unwrap_or_else(|e| panic!("{name} missing: {e}"));
        let doc = Json::parse(&text).unwrap_or_else(|e| panic!("{name} invalid: {e:?}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("hermes-matrix-report/1")
        );
    }
    // A failing scenario propagates into the exit status.
    let bad = run("stub-bad-exit");
    assert!(!bad.status.success(), "bad-exit scenario must fail the run");
}

#[test]
fn rep_artifacts_land_in_scenario_dirs(){
    let fx = Fixture::new("artifacts");
    let cfg = fx.config("out", &["stub-ok"]);
    run_matrix(&cfg).expect("matrix runs");
    for rep in 0..3 {
        let p = cfg.out_dir.join("stub-ok").join(format!("rep{rep}.json"));
        assert!(p.is_file(), "{} missing", p.display());
        assert!(
            Path::new(&cfg.out_dir.join("stub-ok").join(format!("rep{rep}.stderr"))).is_file(),
            "stderr capture missing for rep {rep}"
        );
    }
}
