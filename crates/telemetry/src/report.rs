//! The `BENCH_<exp>.json` report writer.
//!
//! Every experiment binary emits one report document per run (via
//! `hermes_bench::run_experiment`), versioned under [`SCHEMA`]. The layout
//! is schema-stable: every top-level key is always present, in a fixed
//! order, so perf trajectories can be diffed across commits. All content
//! is a pure function of the run's seeds — the only environmental field is
//! the git revision, which is constant across repeat runs of one build.

use crate::metrics::Registry;
use crate::trace::Tracer;
use hermes_util::json::{Json, ToJson};

/// Report schema identifier; bump on any layout change.
pub const SCHEMA: &str = "hermes-bench-report/1";

/// Resolves the git revision stamped into reports: `HERMES_GIT_REV` if
/// set (pinning for reproducible archives), else `git rev-parse HEAD`,
/// else `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("HERMES_GIT_REV") {
        return rev;
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Assembles the full report document from a run's telemetry state.
///
/// `meta` is the experiment's own key/value context (seed, scale, config
/// knobs) in registration order.
pub fn build(
    experiment: &str,
    enabled: bool,
    meta: &[(String, Json)],
    registry: &Registry,
    tracer: &Tracer,
) -> Json {
    let (counters, gauges, histograms, series) = registry.to_json_parts();
    let (spans, trace) = tracer.to_json_parts();
    Json::obj([
        ("schema", SCHEMA.to_json()),
        ("experiment", experiment.to_json()),
        ("git_rev", git_rev().to_json()),
        ("telemetry_enabled", enabled.to_json()),
        (
            "meta",
            Json::obj(meta.iter().map(|(k, v)| (k.clone(), v.clone()))),
        ),
        ("counters", counters),
        ("gauges", gauges),
        ("histograms", histograms),
        ("series", series),
        ("spans", spans),
        ("trace", trace),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_layout_is_schema_stable() {
        let reg = Registry::default();
        let tr = Tracer::default();
        let doc = build("unit", false, &[("seed".into(), 7u64.to_json())], &reg, &tr);
        for key in [
            "schema",
            "experiment",
            "git_rev",
            "telemetry_enabled",
            "meta",
            "counters",
            "gauges",
            "histograms",
            "series",
            "spans",
            "trace",
        ] {
            assert!(doc.get(key).is_some(), "missing key {key}");
        }
        assert_eq!(doc.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(
            doc.get("meta").and_then(|m| m.get("seed")).and_then(Json::as_f64),
            Some(7.0)
        );
    }

    #[test]
    fn git_rev_env_override_wins() {
        // Process-wide env mutation is safe here: this is the only test in
        // the crate touching HERMES_GIT_REV.
        std::env::set_var("HERMES_GIT_REV", "deadbeef");
        assert_eq!(git_rev(), "deadbeef");
        std::env::remove_var("HERMES_GIT_REV");
    }
}
