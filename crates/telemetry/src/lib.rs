//! # hermes-telemetry — deterministic tracing and metrics
//!
//! The workspace's observability substrate (DESIGN.md "Observability"):
//!
//! * a **span/event tracer** keyed on simulated time — nested scoped spans
//!   with static labels in a bounded ring buffer ([`trace`]);
//! * a **metrics registry** — counters, gauges, log-linear histograms and
//!   bounded time series ([`metrics`]);
//! * a **report writer** emitting the versioned, schema-stable
//!   `BENCH_<exp>.json` document ([`report`]).
//!
//! Determinism is the design constraint: every timestamp is sim-time
//! nanoseconds (never wall clock), every export iterates sorted maps, so a
//! seeded run's telemetry JSON is byte-identical across executions.
//!
//! ## Hot-path cost
//!
//! Recording is gated on one global [`AtomicBool`] checked with a relaxed
//! load — with telemetry disabled (the default) every recording call is a
//! load-and-branch, a few nanoseconds. Enable programmatically with
//! [`set_enabled`] or from the environment (`HERMES_TRACE=1`) with
//! [`init_from_env`].
//!
//! ## Threading model
//!
//! The registry and tracer are thread-local: the simulators are
//! single-threaded, and per-thread state keeps parallel test runners from
//! interleaving each other's metrics. The enabled flag alone is global.
//!
//! ```
//! use hermes_telemetry as telemetry;
//! telemetry::set_enabled(true);
//! telemetry::reset();
//! telemetry::counter("tcam.ops", 1);
//! telemetry::observe("tcam.op_ns", 1_500);
//! let span = telemetry::span_enter("netsim", "te_tick", 1_000);
//! span.end(2_000);
//! let doc = telemetry::report("doctest");
//! assert_eq!(doc.get("counters").unwrap().get("tcam.ops").unwrap().as_f64(), Some(1.0));
//! telemetry::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod metrics;
pub mod report;
pub mod trace;

use hermes_util::json::Json;
use metrics::Registry;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use trace::Tracer;

static ENABLED: AtomicBool = AtomicBool::new(false);

struct State {
    registry: Registry,
    tracer: Tracer,
    meta: Vec<(String, Json)>,
}

impl State {
    fn new() -> Self {
        State {
            registry: Registry::default(),
            tracer: Tracer::default(),
            meta: Vec::new(),
        }
    }
}

thread_local! {
    static STATE: RefCell<State> = RefCell::new(State::new());
}

/// `true` while recording is on. One relaxed atomic load — cheap enough
/// for any hot path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off (global; recorded state is per-thread).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Configures from the environment: `HERMES_TRACE` (unset, empty or `0`
/// leaves telemetry off; anything else enables it) and `HERMES_TRACE_BUF`
/// (ring-buffer/series bound, default 4096).
pub fn init_from_env() {
    let on = std::env::var("HERMES_TRACE")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    set_enabled(on);
    if let Some(cap) = std::env::var("HERMES_TRACE_BUF")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        STATE.with(|s| {
            let mut s = s.borrow_mut();
            s.tracer.set_cap(cap);
            s.registry.set_series_cap(cap);
        });
    }
}

/// Clears this thread's registry, tracer and report metadata (the enabled
/// flag is untouched). Call at the start of a measured run.
pub fn reset() {
    STATE.with(|s| *s.borrow_mut() = State::new());
}

/// Adds `delta` to a counter. No-op while disabled.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.counter_add(name, delta));
}

/// Sets a gauge to its latest value. No-op while disabled.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.gauge_set(name, value));
}

/// Records a value into a log-linear histogram (nanoseconds for `_ns`
/// metrics, raw counts otherwise). No-op while disabled.
#[inline]
pub fn observe(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.observe(name, value));
}

/// Appends a `(sim-time ns, value)` point to a bounded time series.
/// No-op while disabled.
#[inline]
pub fn series(name: &'static str, t_ns: u64, value: f64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().registry.series_push(name, t_ns, value));
}

/// Records an already-measured span (start + duration in sim-time ns) at
/// the current nesting depth. No-op while disabled.
#[inline]
pub fn span(subsystem: &'static str, name: &'static str, at_ns: u64, dur_ns: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| s.borrow_mut().tracer.span_at(subsystem, name, at_ns, dur_ns));
}

/// RAII handle for a scoped span opened by [`span_enter`]. Close it with
/// [`end`](SpanGuard::end) and the sim-time end; a guard dropped without
/// `end` closes its span with zero duration.
#[must_use = "close the span with .end(now_ns)"]
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
}

impl SpanGuard {
    /// Closes the span at `end_ns` sim-time nanoseconds.
    pub fn end(mut self, end_ns: u64) {
        if self.armed {
            self.armed = false;
            STATE.with(|s| s.borrow_mut().tracer.exit(end_ns));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            STATE.with(|s| s.borrow_mut().tracer.exit_abandoned());
        }
    }
}

/// Opens a nested scoped span at `at_ns` sim-time nanoseconds. While
/// disabled the returned guard is inert.
#[inline]
pub fn span_enter(subsystem: &'static str, name: &'static str, at_ns: u64) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    STATE.with(|s| s.borrow_mut().tracer.enter(subsystem, name, at_ns));
    SpanGuard { armed: true }
}

/// Registers (or replaces, keeping position) a report metadata entry —
/// the experiment's seed, scale, config knobs. Always recorded, even
/// while disabled, so reports stay self-describing.
pub fn set_meta(key: &str, value: Json) {
    STATE.with(|s| {
        let meta = &mut s.borrow_mut().meta;
        if let Some(slot) = meta.iter_mut().find(|(k, _)| k == key) {
            slot.1 = value;
        } else {
            meta.push((key.to_string(), value));
        }
    });
}

/// Snapshot of this thread's metrics + trace as one deterministic JSON
/// object (no report envelope — use `report()` for the full document).
pub fn snapshot() -> Json {
    STATE.with(|s| {
        let s = s.borrow();
        let (counters, gauges, histograms, series) = s.registry.to_json_parts();
        let (spans, trace) = s.tracer.to_json_parts();
        Json::obj([
            ("counters", counters),
            ("gauges", gauges),
            ("histograms", histograms),
            ("series", series),
            ("spans", spans),
            ("trace", trace),
        ])
    })
}

/// Builds the full `BENCH_<exp>.json` report document for this thread's
/// recorded state (see [`report::SCHEMA`] for the layout contract).
pub fn report(experiment: &str) -> Json {
    STATE.with(|s| {
        let s = s.borrow();
        report::build(experiment, enabled(), &s.meta, &s.registry, &s.tracer)
    })
}

/// Distinct subsystems that contributed any metric or span, derived from
/// the `<subsystem>.` name prefix (and span labels). Sorted, deduplicated.
pub fn contributing_subsystems() -> Vec<String> {
    STATE.with(|s| snapshot_names(&s.borrow()))
}

fn snapshot_names(s: &State) -> Vec<String> {
    let mut subs: Vec<String> = Vec::new();
    let (counters, gauges, histograms, series) = s.registry.to_json_parts();
    for part in [&counters, &gauges, &histograms, &series] {
        if let Json::Obj(pairs) = part {
            for (k, _) in pairs {
                if let Some((sub, _)) = k.split_once('.') {
                    subs.push(sub.to_string());
                }
            }
        }
    }
    subs.extend(s.tracer.subsystems().iter().map(|x| x.to_string()));
    subs.sort();
    subs.dedup();
    subs
}

#[cfg(test)]
mod tests {
    use super::*;

    // The crate's thread-local state plus cargo's parallel test threads
    // means each test must fully own its state: reset + enable at the
    // start, disable at the end.
    fn scoped<T>(body: impl FnOnce() -> T) -> T {
        set_enabled(true);
        reset();
        let out = body();
        set_enabled(false);
        out
    }

    #[test]
    fn disabled_calls_are_no_ops() {
        set_enabled(false);
        reset();
        counter("x.c", 1);
        observe("x.h", 5);
        series("x.s", 1, 1.0);
        span("x", "s", 0, 1);
        span_enter("x", "s", 0).end(5);
        let doc = snapshot();
        assert_eq!(doc.get("counters").unwrap().to_string(), "{}");
        assert_eq!(doc.get("spans").unwrap().to_string(), "[]");
    }

    #[test]
    fn enabled_calls_record_and_reset_clears() {
        scoped(|| {
            counter("tcam.ops", 2);
            counter("tcam.ops", 3);
            gauge("manager.occupancy", 0.5);
            observe("tcam.op_ns", 1000);
            series("netsim.active_flows", 10, 4.0);
            span("recovery", "audit", 5, 10);
            let doc = snapshot();
            assert_eq!(
                doc.get("counters").unwrap().get("tcam.ops").unwrap().as_f64(),
                Some(5.0)
            );
            let subs = contributing_subsystems();
            assert_eq!(subs, vec!["manager", "netsim", "recovery", "tcam"]);
            reset();
            assert_eq!(snapshot().get("counters").unwrap().to_string(), "{}");
        });
    }

    #[test]
    fn meta_replaces_in_place() {
        scoped(|| {
            set_meta("seed", Json::Int(1));
            set_meta("scale", Json::Int(2));
            set_meta("seed", Json::Int(9));
            let doc = report("unit");
            assert_eq!(
                doc.get("meta").unwrap().to_string(),
                "{\"seed\":9,\"scale\":2}",
                "replacement keeps original position"
            );
        });
    }

    #[test]
    fn identical_recording_is_byte_identical() {
        let run = || {
            scoped(|| {
                for i in 0..100u64 {
                    counter("tcam.ops", 1);
                    observe("tcam.op_ns", i * 37 % 9000);
                    span("gatekeeper", "admit", i * 10, i % 7);
                }
                snapshot().to_string()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn guard_nesting_and_abandonment() {
        scoped(|| {
            let outer = span_enter("netsim", "te_tick", 100);
            let inner = span_enter("manager", "migrate", 110);
            inner.end(150);
            drop(outer); // abandoned: closes at start with zero duration
            let doc = snapshot();
            let spans = doc.get("spans").unwrap().as_arr().unwrap();
            assert_eq!(spans.len(), 2);
        });
    }
}
