//! The span/event tracer: nested scoped spans keyed on simulated time.
//!
//! Spans carry two static labels — `subsystem` and `name` — and integer
//! sim-time nanosecond timestamps, so the trace of a seeded run is
//! byte-identical across executions. Completed spans land in a bounded
//! ring buffer (the most recent `cap` survive; older ones are counted in
//! `dropped`) and fold into per-`(subsystem, name)` rollups that never
//! drop anything.

use hermes_util::json::{Json, ToJson};
use std::collections::BTreeMap;

/// One completed span (or instantaneous event, `dur_ns == 0`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim-time start, nanoseconds.
    pub at_ns: u64,
    /// Duration in sim nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at record time (0 = top level).
    pub depth: u32,
    /// Owning subsystem (`tcam`, `gatekeeper`, `manager`, …).
    pub subsystem: &'static str,
    /// Span label within the subsystem.
    pub name: &'static str,
}

/// Lossless per-label aggregate over every span ever recorded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rollup {
    /// Spans recorded under this label.
    pub count: u64,
    /// Sum of durations, sim nanoseconds.
    pub total_ns: u128,
    /// Longest single span, sim nanoseconds.
    pub max_ns: u64,
}

/// The per-thread trace store (see the crate root for the recording API).
#[derive(Debug)]
pub struct Tracer {
    cap: usize,
    events: Vec<TraceEvent>,
    head: usize,
    dropped: u64,
    stack: Vec<(&'static str, &'static str, u64)>,
    rollups: BTreeMap<(&'static str, &'static str), Rollup>,
}

impl Tracer {
    /// Default ring-buffer capacity (override via `HERMES_TRACE_BUF`).
    pub const DEFAULT_CAP: usize = 4096;

    /// An empty tracer bounded at `cap` events.
    pub fn new(cap: usize) -> Self {
        Tracer {
            cap: cap.max(1),
            events: Vec::new(),
            head: 0,
            dropped: 0,
            stack: Vec::new(),
            rollups: BTreeMap::new(),
        }
    }

    /// Re-bounds the ring (applies to future events; existing ones kept
    /// only if they still fit).
    pub fn set_cap(&mut self, cap: usize) {
        let cap = cap.max(1);
        if cap < self.events.len() {
            let ordered = self.events_chronological();
            let cut = ordered.len() - cap;
            self.dropped += cut as u64;
            self.events = ordered[cut..].to_vec();
            self.head = 0;
        }
        self.cap = cap;
    }

    fn push(&mut self, ev: TraceEvent) {
        let roll = self
            .rollups
            .entry((ev.subsystem, ev.name))
            .or_default();
        roll.count += 1;
        roll.total_ns += u128::from(ev.dur_ns);
        roll.max_ns = roll.max_ns.max(ev.dur_ns);
        if self.events.len() < self.cap {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Records an already-measured span at the current nesting depth.
    pub fn span_at(&mut self, subsystem: &'static str, name: &'static str, at_ns: u64, dur_ns: u64) {
        let depth = self.stack.len() as u32;
        self.push(TraceEvent {
            at_ns,
            dur_ns,
            depth,
            subsystem,
            name,
        });
    }

    /// Opens a nested span; pair with [`exit`](Self::exit).
    pub fn enter(&mut self, subsystem: &'static str, name: &'static str, at_ns: u64) {
        self.stack.push((subsystem, name, at_ns));
    }

    /// Closes the innermost open span at `end_ns` (clamped to the start —
    /// durations never go negative even if a caller passes a stale clock).
    pub fn exit(&mut self, end_ns: u64) {
        if let Some((subsystem, name, at_ns)) = self.stack.pop() {
            let depth = self.stack.len() as u32;
            self.push(TraceEvent {
                at_ns,
                dur_ns: end_ns.saturating_sub(at_ns),
                depth,
                subsystem,
                name,
            });
        }
    }

    /// Closes the innermost open span with zero duration (guard dropped
    /// without an explicit end time).
    pub fn exit_abandoned(&mut self) {
        if let Some((_, _, at)) = self.stack.last().copied() {
            self.exit(at);
        }
    }

    /// Completed events, oldest first.
    pub fn events_chronological(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Per-label rollups (deterministically ordered).
    pub fn rollups(&self) -> &BTreeMap<(&'static str, &'static str), Rollup> {
        &self.rollups
    }

    /// Distinct subsystems that recorded at least one span.
    pub fn subsystems(&self) -> Vec<&'static str> {
        let mut subs: Vec<&'static str> = self.rollups.keys().map(|(s, _)| *s).collect();
        subs.dedup();
        subs
    }

    /// `true` when no span was ever recorded.
    pub fn is_empty(&self) -> bool {
        self.rollups.is_empty()
    }

    /// Deterministic JSON export: `(spans rollup array, trace object)`.
    pub fn to_json_parts(&self) -> (Json, Json) {
        let spans: Vec<Json> = self
            .rollups
            .iter()
            .map(|((sub, name), r)| {
                Json::obj([
                    ("subsystem", sub.to_json()),
                    ("name", name.to_json()),
                    ("count", r.count.to_json()),
                    ("total_ns", Json::Int(r.total_ns as i128)),
                    ("max_ns", r.max_ns.to_json()),
                ])
            })
            .collect();
        let events: Vec<Json> = self
            .events_chronological()
            .into_iter()
            .map(|e| {
                Json::obj([
                    ("at", e.at_ns.to_json()),
                    ("dur", e.dur_ns.to_json()),
                    ("depth", e.depth.to_json()),
                    ("subsystem", e.subsystem.to_json()),
                    ("name", e.name.to_json()),
                ])
            })
            .collect();
        let trace = Json::obj([
            ("cap", (self.cap as u64).to_json()),
            ("dropped", self.dropped.to_json()),
            ("events", Json::Arr(events)),
        ]);
        (Json::Arr(spans), trace)
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new(Self::DEFAULT_CAP)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_depth() {
        let mut t = Tracer::default();
        t.enter("netsim", "te_tick", 100);
        t.span_at("tcam", "apply", 110, 5);
        t.enter("manager", "migrate", 120, );
        t.exit(150);
        t.exit(200);
        let evs = t.events_chronological();
        assert_eq!(evs.len(), 3);
        // Innermost events carry their nesting depth at record time.
        assert_eq!((evs[0].subsystem, evs[0].depth), ("tcam", 1));
        assert_eq!((evs[1].subsystem, evs[1].depth, evs[1].dur_ns), ("manager", 1, 30));
        assert_eq!((evs[2].subsystem, evs[2].depth, evs[2].dur_ns), ("netsim", 0, 100));
    }

    #[test]
    fn ring_bounds_and_rollups_do_not() {
        let mut t = Tracer::new(4);
        for i in 0..10u64 {
            t.span_at("tcam", "apply", i, 1);
        }
        assert_eq!(t.events_chronological().len(), 4);
        assert_eq!(t.dropped(), 6);
        let r = t.rollups()[&("tcam", "apply")];
        assert_eq!((r.count, r.total_ns, r.max_ns), (10, 10, 1));
    }

    #[test]
    fn exit_clamps_backwards_clock() {
        let mut t = Tracer::default();
        t.enter("a", "b", 100);
        t.exit(50);
        assert_eq!(t.events_chronological()[0].dur_ns, 0);
    }

    #[test]
    fn abandoned_span_closes_with_zero_duration() {
        let mut t = Tracer::default();
        t.enter("a", "b", 7);
        t.exit_abandoned();
        let e = t.events_chronological()[0];
        assert_eq!((e.at_ns, e.dur_ns), (7, 0));
    }

    #[test]
    fn set_cap_trims_oldest() {
        let mut t = Tracer::new(8);
        for i in 0..8u64 {
            t.span_at("s", "n", i, 0);
        }
        t.set_cap(3);
        let evs = t.events_chronological();
        assert_eq!(evs.iter().map(|e| e.at_ns).collect::<Vec<_>>(), vec![5, 6, 7]);
        assert_eq!(t.dropped(), 5);
    }
}
