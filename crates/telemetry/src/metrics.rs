//! The metrics registry: counters, gauges, log-linear histograms and
//! bounded time series.
//!
//! All metric names are `&'static str` in `<subsystem>.<metric>` form
//! (DESIGN.md "Observability"); the registry keeps them in `BTreeMap`s so
//! every export is deterministically ordered. Histogram values are plain
//! `u64`s — by convention nanoseconds for latency metrics (suffix `_ns`),
//! raw counts otherwise.

use hermes_util::json::{Json, ToJson};
use std::collections::BTreeMap;

/// Number of linear sub-buckets per power-of-two octave (8 ⇒ ≤ 12.5%
/// relative bucket width — plenty for latency distributions).
const SUB_BUCKETS: u64 = 8;

/// A log-linear histogram over `u64` values.
///
/// Values below 8 get exact singleton buckets; above that, each power-of-two
/// octave `[2^k, 2^(k+1))` splits into [`SUB_BUCKETS`] linear sub-buckets.
/// The scheme covers the full `u64` range (1 ns to far past one second)
/// with at most 496 buckets, allocated lazily.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Bucket index for a value (monotone in `v`).
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS {
        v as usize
    } else {
        let k = 63 - v.leading_zeros() as u64; // most significant bit
        (SUB_BUCKETS * k - 3 * SUB_BUCKETS + (v >> (k - 3))) as usize
    }
}

/// Inclusive lower bound of a bucket (inverse of [`bucket_index`]).
fn bucket_lower(idx: usize) -> u64 {
    let idx = idx as u64;
    if idx < SUB_BUCKETS {
        idx
    } else {
        let k = (idx + 2 * SUB_BUCKETS) / SUB_BUCKETS;
        let sub = idx + 3 * SUB_BUCKETS - SUB_BUCKETS * k;
        sub << (k - 3)
    }
}

impl Histogram {
    /// Records one value.
    pub fn record(&mut self, v: u64) {
        let idx = bucket_index(v);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += u128::from(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Nearest-rank p-quantile, resolved to the lower bound of the bucket
    /// holding that rank (0 when empty).
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (p.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return bucket_lower(i).max(self.min).min(self.max);
            }
        }
        self.max
    }
}

impl ToJson for Histogram {
    /// Schema-stable export: summary fields plus the sparse
    /// `[lower_bound, count]` bucket list in ascending order.
    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![bucket_lower(i).to_json(), c.to_json()]))
            .collect();
        Json::obj([
            ("count", self.count.to_json()),
            ("sum", Json::Int(self.sum as i128)),
            ("min", self.min.to_json()),
            ("max", self.max.to_json()),
            ("p50", self.quantile(0.50).to_json()),
            ("p95", self.quantile(0.95).to_json()),
            ("p99", self.quantile(0.99).to_json()),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

/// A bounded `(t_ns, value)` time series kept as a ring buffer: the most
/// recent `cap` points survive, older ones are counted in `dropped`.
#[derive(Clone, Debug)]
pub struct Series {
    cap: usize,
    points: Vec<(u64, f64)>,
    head: usize,
    dropped: u64,
}

impl Series {
    /// An empty series bounded at `cap` points.
    pub fn new(cap: usize) -> Self {
        Series {
            cap: cap.max(1),
            points: Vec::new(),
            head: 0,
            dropped: 0,
        }
    }

    /// Appends a point, evicting the oldest when full.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        if self.points.len() < self.cap {
            self.points.push((t_ns, value));
        } else {
            self.points[self.head] = (t_ns, value);
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Points in chronological order.
    pub fn points(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity(self.points.len());
        out.extend_from_slice(&self.points[self.head..]);
        out.extend_from_slice(&self.points[..self.head]);
        out
    }

    /// Points evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl ToJson for Series {
    fn to_json(&self) -> Json {
        let pts: Vec<Json> = self
            .points()
            .into_iter()
            .map(|(t, v)| Json::Arr(vec![t.to_json(), v.to_json()]))
            .collect();
        Json::obj([
            ("dropped", self.dropped.to_json()),
            ("points", Json::Arr(pts)),
        ])
    }
}

/// The per-thread metric store (see the crate root for the recording API).
#[derive(Debug, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    series: BTreeMap<&'static str, Series>,
    series_cap: usize,
}

impl Registry {
    /// Default bound on each time series (override via `HERMES_TRACE_BUF`).
    pub const DEFAULT_SERIES_CAP: usize = 4096;

    /// Adds to a counter.
    pub fn counter_add(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_insert(0) += delta;
    }

    /// Sets a gauge to its latest value.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Records a value into a histogram.
    pub fn observe(&mut self, name: &'static str, value: u64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Appends a time-series point.
    pub fn series_push(&mut self, name: &'static str, t_ns: u64, value: f64) {
        let cap = if self.series_cap == 0 {
            Self::DEFAULT_SERIES_CAP
        } else {
            self.series_cap
        };
        self.series
            .entry(name)
            .or_insert_with(|| Series::new(cap))
            .push(t_ns, value);
    }

    /// Caps future series at `cap` points (existing series keep theirs).
    pub fn set_series_cap(&mut self, cap: usize) {
        self.series_cap = cap.max(1);
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Borrow a histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.series.is_empty()
    }

    /// Deterministic JSON snapshot: four name-sorted maps.
    pub fn to_json_parts(&self) -> (Json, Json, Json, Json) {
        (
            Json::obj(self.counters.iter().map(|(k, v)| (*k, v.to_json()))),
            Json::obj(self.gauges.iter().map(|(k, v)| (*k, v.to_json()))),
            Json::obj(self.histograms.iter().map(|(k, v)| (*k, v.to_json()))),
            Json::obj(self.series.iter().map(|(k, v)| (*k, v.to_json()))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_inverts() {
        let mut last = None;
        for v in (0..4096u64).chain([1 << 20, 1_000_000_007, 1 << 30, u64::MAX]) {
            let idx = bucket_index(v);
            if let Some((pv, pidx)) = last {
                assert!(idx >= pidx, "index not monotone at {pv} -> {v}");
            }
            let lower = bucket_lower(idx);
            assert!(lower <= v, "lower bound {lower} above value {v}");
            // The top bucket has no successor (its upper edge is 2^64).
            if idx < bucket_index(u64::MAX) {
                assert!(
                    bucket_lower(idx + 1) > v,
                    "value {v} not below next bucket"
                );
            }
            last = Some((v, idx));
        }
    }

    #[test]
    fn histogram_summary_and_quantiles() {
        let mut h = Histogram::default();
        for v in [100u64, 200, 300, 400, 100_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 101_000);
        // Nearest-rank p50 of 5 values is the 3rd; bucket lower bound of
        // 300 in the log-linear scheme is ≤ 300 and > 200.
        let p50 = h.quantile(0.5);
        assert!(p50 > 200 && p50 <= 300, "p50 {p50}");
        assert!(h.quantile(1.0) >= 96 * 1024 / 2);
        assert_eq!(h.quantile(0.0), 100);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.to_json().get("count").and_then(Json::as_f64), Some(0.0));
    }

    #[test]
    fn series_ring_keeps_most_recent() {
        let mut s = Series::new(3);
        for i in 0..5u64 {
            s.push(i, i as f64);
        }
        assert_eq!(s.dropped(), 2);
        assert_eq!(
            s.points(),
            vec![(2, 2.0), (3, 3.0), (4, 4.0)],
            "chronological order, oldest evicted"
        );
    }

    #[test]
    fn registry_export_is_sorted() {
        let mut r = Registry::default();
        r.counter_add("z.second", 2);
        r.counter_add("a.first", 1);
        let (counters, _, _, _) = r.to_json_parts();
        assert_eq!(counters.to_string(), "{\"a.first\":1,\"z.second\":2}");
    }
}
