//! A switch ASIC: carved TCAM slices plus a performance model.
//!
//! Commercial switches expose *TCAM carving*: the monolithic TCAM is
//! subdivided into slices (Broadcom "groups", Cisco "regions") with
//! per-slice sizes, lookup keys and inter-slice priorities (§6). Hermes
//! needs exactly two capabilities from the SDK: (1) create two slices with
//! identical keys and chosen sizes, and (2) target control actions at a
//! specific slice. [`TcamDevice`] models that surface.
//!
//! Lookup walks the slices in configured order — for Hermes, shadow first,
//! then main — honouring each slice's table-miss behaviour, which is how
//! the paper preserves the single-logical-table abstraction (§3).

use crate::fault::{CrashKind, CrashSpec, CrashStats, FaultDecision, FaultPlan, FaultStats};
use crate::perf::SwitchModel;
use crate::table::{BatchReport, OpShifts, TcamError, TcamOp, TcamTable};
use crate::time::SimDuration;
use hermes_rules::prelude::*;
use hermes_util::rng::{Rng, SeedableRng, StdRng};

/// What a slice does when no entry matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MissBehavior {
    /// Continue the lookup in the next slice (Hermes shadow-table default:
    /// "forward to next table").
    GotoNextSlice,
    /// Drop the packet.
    Drop,
    /// Punt to the controller (OpenFlow table-miss default).
    ToController,
}

/// One carved TCAM slice.
#[derive(Clone, Debug)]
pub struct Slice {
    /// Operator-visible slice label.
    pub label: String,
    /// The slice's entry table.
    pub table: TcamTable,
    /// Behaviour on lookup miss.
    pub miss: MissBehavior,
    /// Total control-plane time this slice has consumed.
    pub busy: SimDuration,
}

/// Outcome of one control-plane action against a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpReport {
    /// Simulated latency charged for the action.
    pub latency: SimDuration,
    /// Entries physically shifted (insertions only).
    pub shifts: usize,
    /// Slice occupancy before the action.
    pub occupancy_before: usize,
    /// Which slice the action was applied to.
    pub slice: usize,
}

/// Outcome of one batched control-plane transaction against a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BatchOpReport {
    /// Simulated latency charged for the whole transaction (one handshake).
    pub latency: SimDuration,
    /// The table-level accounting (coalesced shifts, per-kind tallies).
    pub report: BatchReport,
    /// Which slice the transaction was applied to.
    pub slice: usize,
}

/// The result of a packet lookup across the slice pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LookupResult {
    /// A rule matched; the device applies its action.
    Matched {
        /// Index of the slice that terminated the lookup.
        slice: usize,
        /// The matching rule.
        rule: Rule,
    },
    /// The pipeline ended with a drop.
    Dropped,
    /// The pipeline punted the packet to the controller.
    ToController,
}

impl LookupResult {
    /// The forwarding action, if a rule matched.
    pub fn action(&self) -> Option<Action> {
        match self {
            LookupResult::Matched { rule, .. } => Some(rule.action),
            _ => None,
        }
    }

    /// The matching rule, if any.
    pub fn rule(&self) -> Option<Rule> {
        match self {
            LookupResult::Matched { rule, .. } => Some(*rule),
            _ => None,
        }
    }
}

/// A switch ASIC: one or more TCAM slices sharing a performance model.
#[derive(Clone, Debug)]
pub struct TcamDevice {
    model: SwitchModel,
    slices: Vec<Slice>,
    fault: Option<FaultPlan>,
    /// `false` after a crash until the controller reconnects; every
    /// control-plane op fails with [`TcamError::Disconnected`] meanwhile.
    connected: bool,
    /// Reconnect attempts still to be denied (the switch is "booting").
    reconnect_denials: u32,
    crash_stats: CrashStats,
}

impl TcamDevice {
    /// A traditional single-table switch: the whole TCAM in one slice with
    /// OpenFlow's punt-on-miss default.
    pub fn monolithic(model: SwitchModel) -> Self {
        let table = TcamTable::new(model.capacity, model.placement);
        TcamDevice {
            model,
            slices: vec![Slice {
                label: "main".into(),
                table,
                miss: MissBehavior::ToController,
                busy: SimDuration::ZERO,
            }],
            fault: None,
            connected: true,
            reconnect_denials: 0,
            crash_stats: CrashStats::default(),
        }
    }

    /// Carves the TCAM into slices of the given sizes. The sum of sizes
    /// must not exceed the model's capacity; the slices are looked up in
    /// the given order.
    ///
    /// # Panics
    /// Panics if the sizes oversubscribe the TCAM.
    pub fn carved(model: SwitchModel, slices: &[(&str, usize, MissBehavior)]) -> Self {
        let total: usize = slices.iter().map(|(_, s, _)| s).sum();
        assert!(
            total <= model.capacity,
            "carving {total} entries exceeds capacity {}",
            model.capacity
        );
        let placement = model.placement;
        TcamDevice {
            model,
            slices: slices
                .iter()
                .map(|(label, size, miss)| Slice {
                    label: (*label).into(),
                    table: TcamTable::new(*size, placement),
                    miss: *miss,
                    busy: SimDuration::ZERO,
                })
                .collect(),
            fault: None,
            connected: true,
            reconnect_denials: 0,
            crash_stats: CrashStats::default(),
        }
    }

    /// Installs (or clears) a fault-injection plan on the control channel.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault = plan;
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault.as_ref()
    }

    /// Injected-fault counters, when a plan is installed.
    pub fn fault_stats(&self) -> Option<FaultStats> {
        self.fault.as_ref().map(|p| p.stats())
    }

    /// `true` while the control session is up. Lookups (the data plane)
    /// keep working either way — a dead control channel does not stop the
    /// ASIC from forwarding with whatever the TCAM still holds.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Applied-crash counters (wipes, survivors, reconnect handshakes).
    pub fn crash_stats(&self) -> CrashStats {
        self.crash_stats
    }

    /// One controller reconnect attempt. Returns `true` once the session
    /// is up; a still-booting device denies the first
    /// [`CrashSpec::reconnect_denials`] attempts. Idempotent when already
    /// connected.
    pub fn reconnect(&mut self) -> bool {
        self.crash_stats.reconnect_attempts += 1;
        if self.connected {
            return true;
        }
        if self.reconnect_denials > 0 {
            self.reconnect_denials -= 1;
            self.crash_stats.reconnects_denied += 1;
            hermes_telemetry::counter("tcam.crash.reconnect_denied", 1);
            return false;
        }
        self.connected = true;
        hermes_telemetry::counter("tcam.crash.reconnects", 1);
        true
    }

    /// Crashes the device right now, outside any fault plan — the hook
    /// netsim and tests use to schedule switch-down windows.
    pub fn force_crash(&mut self, spec: CrashSpec) {
        self.crash(spec);
    }

    /// Applies a crash: mangles the TCAM per the spec and tears down the
    /// control session until [`reconnect`](Self::reconnect) succeeds.
    fn crash(&mut self, spec: CrashSpec) {
        self.connected = false;
        self.reconnect_denials = spec.reconnect_denials;
        self.crash_stats.crashes += 1;
        let mut lost = 0u64;
        match spec.kind {
            CrashKind::Wipe => {
                self.crash_stats.wipes += 1;
                hermes_telemetry::counter("tcam.crash.wipes", 1);
                for s in &mut self.slices {
                    lost += s.table.clear() as u64;
                }
            }
            CrashKind::Partial { survivor_prob } => {
                self.crash_stats.partials += 1;
                hermes_telemetry::counter("tcam.crash.partials", 1);
                let mut rng = StdRng::seed_from_u64(spec.survivor_seed);
                for s in &mut self.slices {
                    for r in s.table.drain() {
                        let roll: f64 = rng.gen_range(0.0..1.0);
                        if roll < survivor_prob {
                            s.table.insert(r).expect(
                                "INVARIANT: a survivor re-enters the freshly drained table it came from, so capacity and uniqueness hold",
                            );
                            self.crash_stats.entries_retained += 1;
                        } else {
                            lost += 1;
                        }
                    }
                }
            }
            CrashKind::Disconnect => {
                self.crash_stats.disconnects += 1;
                hermes_telemetry::counter("tcam.crash.disconnects", 1);
            }
        }
        self.crash_stats.entries_lost += lost;
        if lost > 0 {
            hermes_telemetry::counter("tcam.crash.entries_lost", lost);
        }
    }

    /// The performance model.
    pub fn model(&self) -> &SwitchModel {
        &self.model
    }

    /// Number of slices.
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Borrow a slice.
    pub fn slice(&self, idx: usize) -> &Slice {
        &self.slices[idx]
    }

    /// Mutably borrow a slice (test/bench plumbing; normal mutation goes
    /// through [`apply`](Self::apply) so latency is charged).
    pub fn slice_mut(&mut self, idx: usize) -> &mut Slice {
        &mut self.slices[idx]
    }

    /// Total entries across all slices.
    pub fn total_entries(&self) -> usize {
        self.slices.iter().map(|s| s.table.len()).sum()
    }

    /// Finds which slice holds the rule, if any.
    pub fn find_rule(&self, id: RuleId) -> Option<(usize, Rule)> {
        self.slices
            .iter()
            .enumerate()
            .find_map(|(i, s)| s.table.get(id).map(|r| (i, *r)))
    }

    /// Applies a control action to a specific slice, charging latency per
    /// the performance model.
    ///
    /// When a [`FaultPlan`] is installed the op may be transiently rejected
    /// ([`TcamError::ChannelBusy`] / [`TcamError::Outage`]), have its latency
    /// spiked, or — worst of all — be *silently dropped*: the device returns
    /// a plausible `Ok` report without applying anything, exactly like the
    /// lying firmware the paper measures (§2).
    pub fn apply(&mut self, slice: usize, action: &ControlAction) -> Result<OpReport, TcamError> {
        // A dead session rejects everything before the fault plan is even
        // consulted, so the per-op fault stream is a pure function of the
        // ops that actually reached the channel.
        if !self.connected {
            return Err(TcamError::Disconnected);
        }
        let mut spike = 1.0;
        if let Some(plan) = self.fault.as_mut() {
            let (is_insert, is_delete) = match action {
                ControlAction::Insert(_) => (true, false),
                ControlAction::Delete(_) => (false, true),
                ControlAction::Modify { .. } => (false, false),
            };
            match plan.decide(is_insert, is_delete) {
                FaultDecision::Normal => {}
                FaultDecision::Crash(spec) => {
                    self.crash(spec);
                    return Err(TcamError::Disconnected);
                }
                FaultDecision::Fail => {
                    hermes_telemetry::counter("tcam.fault_fail", 1);
                    return Err(TcamError::ChannelBusy);
                }
                FaultDecision::Outage => {
                    hermes_telemetry::counter("tcam.fault_outage", 1);
                    return Err(TcamError::Outage);
                }
                FaultDecision::Spike(m) => {
                    hermes_telemetry::counter("tcam.fault_spike", 1);
                    spike = m;
                }
                FaultDecision::SilentDrop => {
                    hermes_telemetry::counter("tcam.fault_silent_drop", 1);
                    // Ack with a plausible latency, apply nothing.
                    let occupancy_before = self.slices[slice].table.len();
                    let latency = match action {
                        ControlAction::Insert(_) => {
                            self.model.insert_latency(occupancy_before, 0)
                        }
                        ControlAction::Delete(_) => self.model.delete,
                        ControlAction::Modify { .. } => self.model.modify,
                    };
                    self.slices[slice].busy += latency;
                    return Ok(OpReport {
                        latency,
                        shifts: 0,
                        occupancy_before,
                        slice,
                    });
                }
            }
        }
        let occupancy_before = self.slices[slice].table.len();
        let (latency, shifts) = match action {
            ControlAction::Insert(rule) => {
                let OpShifts {
                    shifts,
                    occupancy_before,
                } = self.slices[slice].table.insert(*rule)?;
                (self.model.insert_latency(occupancy_before, shifts), shifts)
            }
            ControlAction::Delete(id) => {
                self.slices[slice].table.delete(*id)?;
                (self.model.delete, 0)
            }
            ControlAction::Modify {
                id,
                action,
                priority,
            } => {
                if priority.is_some() {
                    // Priority changes are delete+insert; higher layers
                    // (Hermes's Gate Keeper, §4.1) perform that conversion.
                    let old = *self.slices[slice]
                        .table
                        .get(*id)
                        .ok_or(TcamError::NotFound(*id))?;
                    self.slices[slice].table.delete(*id)?;
                    let mut new_rule = old;
                    if let Some(a) = action {
                        new_rule.action = *a;
                    }
                    new_rule.priority = priority.expect("INVARIANT: the Modify arm runs only when priority.is_some()");
                    let OpShifts {
                        shifts,
                        occupancy_before,
                    } = self.slices[slice].table.insert(new_rule)?;
                    (
                        self.model.delete + self.model.insert_latency(occupancy_before, shifts),
                        shifts,
                    )
                } else {
                    if let Some(a) = action {
                        self.slices[slice].table.modify_action(*id, *a)?;
                    }
                    (self.model.modify, 0)
                }
            }
        };
        let latency = if spike != 1.0 {
            latency.mul_f64(spike)
        } else {
            latency
        };
        self.slices[slice].busy += latency;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("tcam.ops", 1);
            hermes_telemetry::counter("tcam.shifts", shifts as u64);
            hermes_telemetry::observe("tcam.op_ns", latency.as_nanos());
        }
        Ok(OpReport {
            latency,
            shifts,
            occupancy_before,
            slice,
        })
    }

    /// Applies a whole [`TcamOp`] sequence to a slice as one control-plane
    /// transaction: one driver/ASIC handshake, one coalesced shift plan,
    /// one fault decision. The batch is atomic — a validation error (or an
    /// injected channel fault) leaves the slice untouched.
    ///
    /// Under an installed [`FaultPlan`] the whole transaction is subject
    /// to a *single* fault decision: a transient failure rejects the batch,
    /// a latency spike multiplies the batch latency, and a silent drop acks
    /// the batch with a plausible latency while applying none of it (the
    /// audit/reconcile sweep is what eventually heals that, same as for
    /// single ops).
    pub fn apply_batch(
        &mut self,
        slice: usize,
        ops: &[TcamOp],
    ) -> Result<BatchOpReport, TcamError> {
        if ops.is_empty() {
            return Ok(BatchOpReport {
                latency: SimDuration::ZERO,
                report: BatchReport {
                    occupancy_before: self.slices[slice].table.len(),
                    ..BatchReport::default()
                },
                slice,
            });
        }
        if !self.connected {
            return Err(TcamError::Disconnected);
        }
        let mut spike = 1.0;
        if let Some(plan) = self.fault.as_mut() {
            let any_insert = ops.iter().any(|o| matches!(o, TcamOp::Insert(_)));
            let any_delete = ops.iter().any(|o| matches!(o, TcamOp::Delete(_)));
            match plan.decide(any_insert, any_delete) {
                FaultDecision::Normal => {}
                FaultDecision::Crash(spec) => {
                    self.crash(spec);
                    return Err(TcamError::Disconnected);
                }
                FaultDecision::Fail => {
                    hermes_telemetry::counter("tcam.fault_fail", 1);
                    return Err(TcamError::ChannelBusy);
                }
                FaultDecision::Outage => {
                    hermes_telemetry::counter("tcam.fault_outage", 1);
                    return Err(TcamError::Outage);
                }
                FaultDecision::Spike(m) => {
                    hermes_telemetry::counter("tcam.fault_spike", 1);
                    spike = m;
                }
                FaultDecision::SilentDrop => {
                    hermes_telemetry::counter("tcam.fault_silent_drop", 1);
                    // Ack the whole batch plausibly, apply nothing.
                    let occupancy_before = self.slices[slice].table.len();
                    let (mut ins, mut del, mut modi) = (0usize, 0usize, 0usize);
                    for op in ops {
                        match op {
                            TcamOp::Insert(_) => ins += 1,
                            TcamOp::Delete(_) => del += 1,
                            TcamOp::ModifyAction { .. } | TcamOp::ModifyKey { .. } => modi += 1,
                        }
                    }
                    let latency = self
                        .model
                        .batch_latency(occupancy_before, 0, ins, del, modi);
                    self.slices[slice].busy += latency;
                    return Ok(BatchOpReport {
                        latency,
                        report: BatchReport {
                            inserts: ins,
                            deletes: del,
                            modifies: modi,
                            occupancy_before,
                            ..BatchReport::default()
                        },
                        slice,
                    });
                }
            }
        }
        let report = self.slices[slice].table.apply_batch(ops)?;
        let latency = self.model.batch_latency(
            report.occupancy_before,
            report.shifts,
            report.inserts,
            report.deletes,
            report.modifies,
        );
        let latency = if spike != 1.0 {
            latency.mul_f64(spike)
        } else {
            latency
        };
        self.slices[slice].busy += latency;
        if hermes_telemetry::enabled() {
            hermes_telemetry::counter("tcam.ops", ops.len() as u64);
            hermes_telemetry::counter("tcam.shifts", report.shifts as u64);
            hermes_telemetry::counter("tcam.batch_ops", 1);
            hermes_telemetry::counter("tcam.batch_entries", ops.len() as u64);
            hermes_telemetry::counter("tcam.batch_shifts", report.shifts as u64);
            hermes_telemetry::counter(
                "tcam.batch_saved_shifts",
                report.naive_shifts.saturating_sub(report.shifts) as u64,
            );
            hermes_telemetry::observe("tcam.batch_ns", latency.as_nanos());
        }
        Ok(BatchOpReport {
            latency,
            report,
            slice,
        })
    }

    /// Packet lookup through the slice pipeline.
    pub fn lookup(&mut self, packet: u128) -> LookupResult {
        for i in 0..self.slices.len() {
            match self.slices[i].table.lookup(packet) {
                Some(rule) if rule.action == Action::GotoNextTable => continue,
                Some(rule) => return LookupResult::Matched { slice: i, rule },
                None => match self.slices[i].miss {
                    MissBehavior::GotoNextSlice => continue,
                    MissBehavior::Drop => return LookupResult::Dropped,
                    MissBehavior::ToController => return LookupResult::ToController,
                },
            }
        }
        // Walked off the end of the pipeline.
        LookupResult::ToController
    }

    /// Lookup without statistics (oracle/tests).
    pub fn peek(&self, packet: u128) -> LookupResult {
        for (i, s) in self.slices.iter().enumerate() {
            match s.table.peek(packet) {
                Some(rule) if rule.action == Action::GotoNextTable => continue,
                Some(rule) => return LookupResult::Matched { slice: i, rule },
                None => match s.miss {
                    MissBehavior::GotoNextSlice => continue,
                    MissBehavior::Drop => return LookupResult::Dropped,
                    MissBehavior::ToController => return LookupResult::ToController,
                },
            }
        }
        LookupResult::ToController
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn rule(id: u64, pfx: &str, prio: u32, port: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(port))
    }

    fn pkt(addr: &str) -> u128 {
        let p: Ipv4Prefix = format!("{addr}/32").parse().unwrap();
        (p.addr() as u128) << 96
    }

    #[test]
    fn monolithic_insert_charges_latency() {
        let mut dev = TcamDevice::monolithic(SwitchModel::pica8_p3290());
        let r1 = dev
            .apply(0, &ControlAction::Insert(rule(1, "10.0.0.0/8", 5, 1)))
            .unwrap();
        assert_eq!(r1.latency, dev.model().base); // empty table: no shifts
                                                  // Fill with descending priorities then insert at the top.
        for i in 2..100u64 {
            dev.apply(
                0,
                &ControlAction::Insert(rule(i, "10.0.0.0/8", 200 - i as u32, 1)),
            )
            .unwrap();
        }
        let top = dev
            .apply(
                0,
                &ControlAction::Insert(rule(1000, "10.0.0.0/8", 10_000, 1)),
            )
            .unwrap();
        assert_eq!(top.shifts, 99);
        assert!(top.latency > dev.model().base);
        assert!(dev.slice(0).busy > SimDuration::ZERO);
    }

    #[test]
    fn carved_slices_respect_sizes() {
        let model = SwitchModel::dell_8132f();
        let dev = TcamDevice::carved(
            model,
            &[
                ("shadow", 50, MissBehavior::GotoNextSlice),
                ("main", 900, MissBehavior::Drop),
            ],
        );
        assert_eq!(dev.slice_count(), 2);
        assert_eq!(dev.slice(0).table.capacity(), 50);
        assert_eq!(dev.slice(1).table.capacity(), 900);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn carving_cannot_oversubscribe() {
        let model = SwitchModel::dell_8132f();
        TcamDevice::carved(
            model,
            &[
                ("a", 900, MissBehavior::Drop),
                ("b", 900, MissBehavior::Drop),
            ],
        );
    }

    #[test]
    fn pipeline_lookup_shadow_first() {
        let model = SwitchModel::pica8_p3290();
        let mut dev = TcamDevice::carved(
            model,
            &[
                ("shadow", 64, MissBehavior::GotoNextSlice),
                ("main", 1900, MissBehavior::ToController),
            ],
        );
        dev.apply(1, &ControlAction::Insert(rule(1, "192.168.1.0/24", 1, 2)))
            .unwrap();
        // Miss in shadow falls through to main.
        assert_eq!(
            dev.lookup(pkt("192.168.1.5")).action(),
            Some(Action::Forward(2))
        );
        // A shadow entry takes precedence.
        dev.apply(0, &ControlAction::Insert(rule(2, "192.168.1.0/26", 5, 1)))
            .unwrap();
        assert_eq!(
            dev.lookup(pkt("192.168.1.5")).action(),
            Some(Action::Forward(1))
        );
        // Outside the /26 the main rule still serves.
        assert_eq!(
            dev.lookup(pkt("192.168.1.200")).action(),
            Some(Action::Forward(2))
        );
        // Total miss punts to controller.
        assert_eq!(dev.lookup(pkt("8.8.8.8")), LookupResult::ToController);
    }

    #[test]
    fn goto_next_table_action_falls_through() {
        let model = SwitchModel::pica8_p3290();
        let mut dev = TcamDevice::carved(
            model,
            &[
                ("shadow", 64, MissBehavior::GotoNextSlice),
                ("main", 1900, MissBehavior::Drop),
            ],
        );
        // An explicit fall-through rule in the shadow.
        let fall = Rule::new(1, TernaryKey::ANY, Priority(1), Action::GotoNextTable);
        dev.apply(0, &ControlAction::Insert(fall)).unwrap();
        dev.apply(1, &ControlAction::Insert(rule(2, "10.0.0.0/8", 1, 7)))
            .unwrap();
        assert_eq!(
            dev.lookup(pkt("10.1.2.3")).action(),
            Some(Action::Forward(7))
        );
        assert_eq!(dev.lookup(pkt("11.1.2.3")), LookupResult::Dropped);
    }

    #[test]
    fn delete_and_modify_costs() {
        let mut dev = TcamDevice::monolithic(SwitchModel::hp_5406zl());
        dev.apply(0, &ControlAction::Insert(rule(1, "10.0.0.0/8", 5, 1)))
            .unwrap();
        let del_model = dev.model().delete;
        let mod_model = dev.model().modify;
        let m = dev
            .apply(
                0,
                &ControlAction::Modify {
                    id: RuleId(1),
                    action: Some(Action::Drop),
                    priority: None,
                },
            )
            .unwrap();
        assert_eq!(m.latency, mod_model);
        let d = dev.apply(0, &ControlAction::Delete(RuleId(1))).unwrap();
        assert_eq!(d.latency, del_model);
        assert!(dev.apply(0, &ControlAction::Delete(RuleId(1))).is_err());
    }

    #[test]
    fn priority_modify_is_delete_plus_insert() {
        let mut dev = TcamDevice::monolithic(SwitchModel::pica8_p3290());
        for i in 0..50u64 {
            dev.apply(
                0,
                &ControlAction::Insert(rule(i, "10.0.0.0/8", 100 - i as u32, 1)),
            )
            .unwrap();
        }
        let rep = dev
            .apply(
                0,
                &ControlAction::Modify {
                    id: RuleId(49),
                    action: None,
                    priority: Some(Priority(1000)),
                },
            )
            .unwrap();
        // Rule moved to the top: all other entries shifted.
        assert_eq!(rep.shifts, 49);
        assert_eq!(dev.slice(0).table.entries()[0].id, RuleId(49));
        assert!(rep.latency > dev.model().delete);
    }

    #[test]
    fn batched_apply_amortizes_handshake() {
        let mut dev = TcamDevice::monolithic(SwitchModel::pica8_p3290());
        for i in 0..100u64 {
            dev.apply(
                0,
                &ControlAction::Insert(rule(i, "10.0.0.0/8", 1000 - i as u32, 1)),
            )
            .unwrap();
        }
        let ops: Vec<TcamOp> = (0..10u64)
            .map(|i| TcamOp::Insert(rule(500 + i, "10.0.0.0/8", 5000 + i as u32, 1)))
            .collect();
        // Cost the same inserts singly against a copy of the device.
        let mut singly_dev = dev.clone();
        let mut singly = SimDuration::ZERO;
        for op in &ops {
            if let TcamOp::Insert(r) = op {
                singly += singly_dev.apply(0, &ControlAction::Insert(*r)).unwrap().latency;
            }
        }
        let rep = dev.apply_batch(0, &ops).unwrap();
        assert_eq!(rep.report.inserts, 10);
        assert!(rep.latency < singly, "{} not < {}", rep.latency, singly);
        assert_eq!(
            dev.slice(0).table.entries(),
            singly_dev.slice(0).table.entries(),
            "batched and per-op paths must converge on the same table"
        );
    }

    #[test]
    fn batched_apply_is_atomic_on_error() {
        let mut dev = TcamDevice::monolithic(SwitchModel::pica8_p3290());
        dev.apply(0, &ControlAction::Insert(rule(1, "10.0.0.0/8", 5, 1)))
            .unwrap();
        let busy_before = dev.slice(0).busy;
        let ops = vec![
            TcamOp::Insert(rule(2, "11.0.0.0/8", 6, 1)),
            TcamOp::Delete(RuleId(77)),
        ];
        assert_eq!(
            dev.apply_batch(0, &ops),
            Err(TcamError::NotFound(RuleId(77)))
        );
        assert_eq!(dev.slice(0).table.len(), 1);
        assert_eq!(dev.slice(0).busy, busy_before, "failed batch charges nothing");
        // Empty batch is a free no-op.
        let rep = dev.apply_batch(0, &[]).unwrap();
        assert_eq!(rep.latency, SimDuration::ZERO);
    }

    #[test]
    fn find_rule_locates_slice() {
        let model = SwitchModel::pica8_p3290();
        let mut dev = TcamDevice::carved(
            model,
            &[
                ("shadow", 64, MissBehavior::GotoNextSlice),
                ("main", 1900, MissBehavior::Drop),
            ],
        );
        dev.apply(1, &ControlAction::Insert(rule(9, "10.0.0.0/8", 5, 1)))
            .unwrap();
        assert_eq!(dev.find_rule(RuleId(9)).unwrap().0, 1);
        assert!(dev.find_rule(RuleId(10)).is_none());
    }

    fn loaded_device(n: u64) -> TcamDevice {
        let mut dev = TcamDevice::monolithic(SwitchModel::pica8_p3290());
        for i in 0..n {
            dev.apply(
                0,
                &ControlAction::Insert(rule(i, "10.0.0.0/8", 2000 - i as u32, 1)),
            )
            .unwrap();
        }
        dev
    }

    #[test]
    fn wipe_crash_clears_tables_and_drops_session() {
        let mut dev = loaded_device(40);
        dev.force_crash(CrashSpec {
            kind: CrashKind::Wipe,
            survivor_seed: 0,
            reconnect_denials: 0,
        });
        assert!(!dev.is_connected());
        assert_eq!(dev.total_entries(), 0);
        assert_eq!(dev.crash_stats().entries_lost, 40);
        assert_eq!(
            dev.apply(0, &ControlAction::Insert(rule(99, "11.0.0.0/8", 7, 1))),
            Err(TcamError::Disconnected)
        );
        // Data plane keeps running on (now-empty) state.
        assert_eq!(dev.peek(pkt("10.1.2.3")), LookupResult::ToController);
        assert!(dev.reconnect());
        assert!(dev.is_connected());
        dev.apply(0, &ControlAction::Insert(rule(99, "11.0.0.0/8", 7, 1)))
            .unwrap();
    }

    #[test]
    fn partial_crash_retains_seeded_survivor_subset() {
        let mut a = loaded_device(200);
        let mut b = a.clone();
        let spec = CrashSpec {
            kind: CrashKind::Partial { survivor_prob: 0.5 },
            survivor_seed: 1234,
            reconnect_denials: 0,
        };
        a.force_crash(spec);
        b.force_crash(spec);
        let kept = a.total_entries();
        assert!(kept > 0 && kept < 200, "p=0.5 keeps a strict subset, kept {kept}");
        assert_eq!(
            a.slice(0).table.entries(),
            b.slice(0).table.entries(),
            "same survivor seed must keep the same subset"
        );
        assert_eq!(a.crash_stats().entries_lost as usize, 200 - kept);
        assert_eq!(a.crash_stats().entries_retained as usize, kept);
    }

    #[test]
    fn disconnect_crash_preserves_state_and_denies_reconnects() {
        let mut dev = loaded_device(10);
        dev.force_crash(CrashSpec {
            kind: CrashKind::Disconnect,
            survivor_seed: 0,
            reconnect_denials: 2,
        });
        assert_eq!(dev.total_entries(), 10, "disconnect loses nothing");
        assert_eq!(
            dev.apply_batch(0, &[TcamOp::Delete(RuleId(0))]),
            Err(TcamError::Disconnected)
        );
        assert!(!dev.reconnect(), "first attempt denied");
        assert!(!dev.reconnect(), "second attempt denied");
        assert!(dev.reconnect(), "third attempt lands");
        assert_eq!(dev.crash_stats().reconnects_denied, 2);
        assert_eq!(dev.crash_stats().reconnect_attempts, 3);
        dev.apply(0, &ControlAction::Delete(RuleId(0))).unwrap();
    }

    #[test]
    fn planned_crash_fires_through_apply() {
        let mut dev = loaded_device(5);
        let mut plan = FaultPlan::quiet(3);
        plan.crash_period = 3;
        plan.crash_wipe_prob = 1.0; // always a wipe
        dev.set_fault_plan(Some(plan));
        let mut crashed_at = None;
        for i in 0u64..10 {
            let res = dev.apply(0, &ControlAction::Insert(rule(100 + i, "12.0.0.0/8", 7, 1)));
            if res == Err(TcamError::Disconnected) {
                crashed_at = Some(i);
                break;
            }
        }
        assert_eq!(crashed_at, Some(2), "third op hits the crash point");
        assert!(!dev.is_connected());
        assert_eq!(dev.total_entries(), 0);
        assert_eq!(dev.crash_stats().wipes, 1);
    }
}
