//! Empirical switch performance models.
//!
//! The paper (and the measurement studies it builds on — Kuźniar et al.
//! PAM'15 \[42\], He et al. SOSR'15 \[38\]) characterizes control-plane action
//! latency as a function of flow-table occupancy. Table 1 of the paper
//! reprints the measured *update rates* at several occupancy levels for the
//! Pica8 P-3290 and Dell 8132F; we turn those points into a latency model:
//!
//! * the mean per-update time at occupancy `n` is `1000/rate(n)` ms, with
//!   `rate` piecewise-linearly interpolated between measured points;
//! * a random-position insertion at occupancy `n` shifts `n/2` entries on
//!   average, so the *per-shift* cost at occupancy `n` is
//!   `2·(t(n) − base)/n`;
//! * an individual insertion that shifts `s` entries then costs
//!   `base + per_shift(n)·s` — reproducing both the mean behaviour of
//!   Table 1 and the position/priority-order effects of §2.1.
//!
//! The HP 5406zl appears in the paper's figures but its occupancy table is
//! not reprinted; we synthesize points qualitatively consistent with the
//! PAM'15 characterization (slowest of the three at high occupancy, between
//! the other two at low occupancy). This substitution is recorded in
//! DESIGN.md §2.

use crate::table::PlacementStrategy;
use crate::time::SimDuration;

/// An empirical model of one switch's TCAM control-plane performance.
#[derive(Clone, Debug)]
pub struct SwitchModel {
    /// Human-readable switch name (as used in the paper's figures).
    pub name: String,
    /// Measured `(occupancy, updates_per_second)` points, ascending in
    /// occupancy.
    pub points: Vec<(f64, f64)>,
    /// Fixed per-operation overhead (driver + ASIC handshake) charged even
    /// when nothing shifts.
    pub base: SimDuration,
    /// Latency of a deletion (in-place invalidation; constant, fast).
    pub delete: SimDuration,
    /// Latency of an in-place modification (constant).
    pub modify: SimDuration,
    /// Total TCAM capacity in entries.
    pub capacity: usize,
    /// How the switch software packs entries (drives shift counts).
    pub placement: PlacementStrategy,
}

impl SwitchModel {
    /// The Pica8 P-3290 (108 KB Firebolt-3 ASIC) — Table 1, left.
    pub fn pica8_p3290() -> Self {
        SwitchModel {
            name: "Pica8 P-3290".into(),
            points: vec![
                (50.0, 1266.0),
                (200.0, 114.0),
                (1000.0, 23.0),
                (2000.0, 12.0),
            ],
            base: SimDuration::from_ms(0.30),
            delete: SimDuration::from_ms(0.20),
            modify: SimDuration::from_ms(0.15),
            capacity: 2048,
            placement: PlacementStrategy::PackedLow,
        }
    }

    /// The Dell 8132F (54 KB Trident+ ASIC) — Table 1, right.
    pub fn dell_8132f() -> Self {
        SwitchModel {
            name: "Dell 8132F".into(),
            points: vec![(50.0, 970.0), (250.0, 494.0), (500.0, 42.0), (750.0, 29.0)],
            base: SimDuration::from_ms(0.50),
            delete: SimDuration::from_ms(0.25),
            modify: SimDuration::from_ms(0.20),
            capacity: 1024,
            placement: PlacementStrategy::PackedHigh,
        }
    }

    /// The HP 5406zl. Occupancy points synthesized (see module docs):
    /// qualitatively the slowest switch at high occupancy per PAM'15.
    pub fn hp_5406zl() -> Self {
        SwitchModel {
            name: "HP 5406zl".into(),
            points: vec![(50.0, 850.0), (250.0, 280.0), (500.0, 38.0), (1000.0, 15.0)],
            base: SimDuration::from_ms(0.60),
            delete: SimDuration::from_ms(0.30),
            modify: SimDuration::from_ms(0.25),
            capacity: 1536,
            placement: PlacementStrategy::Balanced,
        }
    }

    /// The three switch models the paper simulates, in its usual order.
    pub fn paper_models() -> Vec<SwitchModel> {
        vec![Self::pica8_p3290(), Self::dell_8132f(), Self::hp_5406zl()]
    }

    /// An idealized switch with zero-latency control actions (the paper's
    /// "no control plane latency" comparison point in §2.2).
    pub fn ideal() -> Self {
        SwitchModel {
            name: "Ideal (zero latency)".into(),
            points: vec![(0.0, f64::INFINITY)],
            base: SimDuration::ZERO,
            delete: SimDuration::ZERO,
            modify: SimDuration::ZERO,
            capacity: 4096,
            placement: PlacementStrategy::PackedLow,
        }
    }

    /// Mean per-update latency at the given occupancy: `1/rate`,
    /// piecewise-linear in occupancy between the measured points.
    pub fn mean_update_latency(&self, occupancy: usize) -> SimDuration {
        if self.base == SimDuration::ZERO && self.points.len() == 1 {
            return SimDuration::ZERO; // ideal switch
        }
        let occ = occupancy as f64;
        let pts = &self.points;
        // Implied point at occupancy 0: the base cost.
        let t0 = self.base.as_ms();
        let t_of = |rate: f64| 1000.0 / rate;
        let (lo, hi) = match pts.iter().position(|&(o, _)| o >= occ) {
            Some(0) => ((0.0, t0), (pts[0].0, t_of(pts[0].1))),
            Some(i) => (
                (pts[i - 1].0, t_of(pts[i - 1].1)),
                (pts[i].0, t_of(pts[i].1)),
            ),
            None => {
                // Extrapolate beyond the last point using the final slope.
                let n = pts.len();
                if n == 1 {
                    ((0.0, t0), (pts[0].0, t_of(pts[0].1)))
                } else {
                    (
                        (pts[n - 2].0, t_of(pts[n - 2].1)),
                        (pts[n - 1].0, t_of(pts[n - 1].1)),
                    )
                }
            }
        };
        let (o_lo, t_lo) = lo;
        let (o_hi, t_hi) = hi;
        let t = if (o_hi - o_lo).abs() < f64::EPSILON {
            t_hi
        } else {
            t_lo + (t_hi - t_lo) * (occ - o_lo) / (o_hi - o_lo)
        };
        SimDuration::from_ms(t.max(t0))
    }

    /// Cost of shifting one entry when the table holds `occupancy` entries.
    ///
    /// Derived so that a mean insertion (shifting `occupancy/2` entries)
    /// reproduces [`mean_update_latency`](Self::mean_update_latency).
    pub fn per_shift_cost(&self, occupancy: usize) -> SimDuration {
        if occupancy == 0 {
            return SimDuration::ZERO;
        }
        let t = self.mean_update_latency(occupancy).as_ms();
        let extra = (t - self.base.as_ms()).max(0.0);
        SimDuration::from_ms(2.0 * extra / occupancy as f64)
    }

    /// The *worst-case* per-shift cost over the whole occupancy range —
    /// used for conservative shadow-table sizing (a guarantee must hold at
    /// any occupancy the shadow can reach).
    pub fn worst_per_shift_cost(&self) -> SimDuration {
        let mut worst = SimDuration::ZERO;
        for &(o, _) in &self.points {
            let c = self.per_shift_cost(o as usize);
            if c > worst {
                worst = c;
            }
        }
        // Also sample capacity (extrapolated region).
        let c = self.per_shift_cost(self.capacity);
        if c > worst {
            worst = c;
        }
        worst
    }

    /// Latency of an insertion that shifted `shifts` entries into a table
    /// that held `occupancy_before` entries.
    pub fn insert_latency(&self, occupancy_before: usize, shifts: usize) -> SimDuration {
        if shifts == 0 {
            return self.base;
        }
        self.base + self.per_shift_cost(occupancy_before).mul_f64(shifts as f64)
    }

    /// Worst-case latency of an insertion into a table bounded to
    /// `table_size` entries: every entry shifts at the worst per-shift cost.
    pub fn worst_insert_latency(&self, table_size: usize) -> SimDuration {
        self.base + self.worst_per_shift_cost().mul_f64(table_size as f64)
    }

    /// The largest table size whose *worst-case* insertion latency stays
    /// within `guarantee` — the shadow-table sizing rule (§7,
    /// `QoSOverheads`). Returns `None` when even an empty table misses the
    /// guarantee (guarantee below the base cost).
    pub fn max_table_for_guarantee(&self, guarantee: SimDuration) -> Option<usize> {
        if guarantee < self.base {
            return None;
        }
        let budget = (guarantee - self.base).as_ms();
        let per = self.worst_per_shift_cost().as_ms();
        if per <= 0.0 {
            return Some(self.capacity);
        }
        Some(((budget / per).floor() as usize).min(self.capacity))
    }

    /// Latency of a *batched* control-plane transaction: one driver/ASIC
    /// handshake (`base`) amortized over the whole batch, plus the
    /// coalesced shift work and the per-entry write costs. This is where
    /// batching wins — `k` single ops pay `k·base`, a batch pays it once.
    pub fn batch_latency(
        &self,
        occupancy_before: usize,
        shifts: usize,
        inserts: usize,
        deletes: usize,
        modifies: usize,
    ) -> SimDuration {
        let mut t = self.base;
        if shifts > 0 {
            t += self.per_shift_cost(occupancy_before).mul_f64(shifts as f64);
        }
        // Each written entry still costs a word write: model inserts as
        // modify-priced writes (the shift work is billed separately).
        t += self.modify.mul_f64(inserts as f64);
        t += self.delete.mul_f64(deletes as f64);
        t += self.modify.mul_f64(modifies as f64);
        t
    }

    /// Mean sustainable update rate at the given occupancy (inverse of
    /// [`mean_update_latency`](Self::mean_update_latency)), in updates/s.
    pub fn update_rate(&self, occupancy: usize) -> f64 {
        let t = self.mean_update_latency(occupancy).as_secs();
        if t <= 0.0 {
            f64::INFINITY
        } else {
            1.0 / t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpolation_hits_measured_points() {
        let m = SwitchModel::pica8_p3290();
        // At measured occupancies the model must reproduce Table 1 rates.
        for &(occ, rate) in &[
            (50usize, 1266.0f64),
            (200, 114.0),
            (1000, 23.0),
            (2000, 12.0),
        ] {
            let got = m.update_rate(occ);
            let err = (got - rate).abs() / rate;
            assert!(err < 0.01, "occ {occ}: rate {got:.1} vs measured {rate}");
        }
        let d = SwitchModel::dell_8132f();
        for &(occ, rate) in &[(50usize, 970.0f64), (250, 494.0), (500, 42.0), (750, 29.0)] {
            let got = d.update_rate(occ);
            let err = (got - rate).abs() / rate;
            assert!(err < 0.01, "occ {occ}: rate {got:.1} vs measured {rate}");
        }
    }

    #[test]
    fn latency_monotone_in_occupancy() {
        for m in SwitchModel::paper_models() {
            let mut last = SimDuration::ZERO;
            for occ in (0..m.capacity).step_by(50) {
                let t = m.mean_update_latency(occ);
                assert!(t >= last, "{}: latency decreased at occ {occ}", m.name);
                last = t;
            }
        }
    }

    #[test]
    fn insert_latency_scales_with_shifts() {
        let m = SwitchModel::pica8_p3290();
        let zero = m.insert_latency(500, 0);
        assert_eq!(zero, m.base);
        let some = m.insert_latency(500, 100);
        let more = m.insert_latency(500, 400);
        assert!(some > zero);
        assert!(more > some);
    }

    #[test]
    fn mean_insert_reproduces_empirical_mean() {
        let m = SwitchModel::dell_8132f();
        for occ in [250usize, 500, 750] {
            let emp = m.mean_update_latency(occ);
            let modeled = m.insert_latency(occ, occ / 2);
            let err = (modeled.as_ms() - emp.as_ms()).abs() / emp.as_ms();
            assert!(
                err < 0.02,
                "occ {occ}: modeled {modeled} vs empirical {emp}"
            );
        }
    }

    #[test]
    fn guarantee_sizing_headline() {
        // Paper headline: 5 ms guarantee costs < 5% of the TCAM.
        let m = SwitchModel::pica8_p3290();
        let s = m
            .max_table_for_guarantee(SimDuration::from_ms(5.0))
            .unwrap();
        let overhead = s as f64 / m.capacity as f64;
        assert!(s > 0);
        assert!(overhead < 0.05, "overhead {:.1}% >= 5%", overhead * 100.0);
        // And the guarantee actually holds at that size.
        assert!(m.worst_insert_latency(s) <= SimDuration::from_ms(5.0));
        // Guarantee below base cost is infeasible.
        assert_eq!(m.max_table_for_guarantee(SimDuration::from_us(1.0)), None);
    }

    #[test]
    fn guarantee_sizing_monotone() {
        for m in SwitchModel::paper_models() {
            let s1 = m
                .max_table_for_guarantee(SimDuration::from_ms(1.0))
                .unwrap();
            let s5 = m
                .max_table_for_guarantee(SimDuration::from_ms(5.0))
                .unwrap();
            let s10 = m
                .max_table_for_guarantee(SimDuration::from_ms(10.0))
                .unwrap();
            assert!(s1 <= s5 && s5 <= s10, "{}: sizing not monotone", m.name);
            assert!(s10 <= m.capacity);
        }
    }

    #[test]
    fn ideal_switch_is_free() {
        let m = SwitchModel::ideal();
        assert_eq!(m.mean_update_latency(1000), SimDuration::ZERO);
        assert_eq!(m.insert_latency(1000, 500), SimDuration::ZERO);
    }

    #[test]
    fn batch_latency_amortizes_base_cost() {
        let m = SwitchModel::pica8_p3290();
        // k inserts singly: k bases + per-insert shift work.
        let k = 20usize;
        let occ = 500usize;
        let shifts_each = 100usize;
        let singly: SimDuration = (0..k)
            .map(|_| m.insert_latency(occ, shifts_each))
            .fold(SimDuration::ZERO, |a, b| a + b);
        // Same total shift work as one batch: one base, k modify-priced
        // entry writes.
        let batched = m.batch_latency(occ, shifts_each * k, k, 0, 0);
        assert!(batched < singly, "batched {batched} not < singly {singly}");
        // Zero-work batch still pays the handshake.
        assert_eq!(m.batch_latency(occ, 0, 0, 0, 0), m.base);
    }

    #[test]
    fn deletion_and_modification_are_cheap_and_constant() {
        // §2.1 takeaways: delete/modify independent of occupancy and much
        // faster than insertion at high occupancy.
        for m in SwitchModel::paper_models() {
            assert!(m.delete < m.mean_update_latency(500));
            assert!(m.modify < m.mean_update_latency(500));
        }
    }
}
