//! Simulation time.
//!
//! All latencies in the reproduction are *simulated*: the TCAM model charges
//! a [`SimDuration`] per control-plane action and the network simulator
//! advances a [`SimTime`] clock. Both are integer nanosecond counts so that
//! simulations are exactly deterministic and order-independent — no floating
//! point drift in the event queue.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as "never" sentinel).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From milliseconds (fractional allowed).
    pub fn from_ms(ms: f64) -> Self {
        SimTime((ms * 1e6).round() as u64)
    }

    /// From seconds (fractional allowed).
    pub fn from_secs(s: f64) -> Self {
        SimTime((s * 1e9).round() as u64)
    }

    /// Nanoseconds since start.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds since start.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds since start.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// From microseconds (fractional allowed).
    pub fn from_us(us: f64) -> Self {
        SimDuration((us * 1e3).round() as u64)
    }

    /// From milliseconds (fractional allowed).
    pub fn from_ms(ms: f64) -> Self {
        SimDuration((ms * 1e6).round() as u64)
    }

    /// From seconds (fractional allowed).
    pub fn from_secs(s: f64) -> Self {
        SimDuration((s * 1e9).round() as u64)
    }

    /// Nanoseconds.
    pub const fn as_nanos(&self) -> u64 {
        self.0
    }

    /// Milliseconds.
    pub fn as_ms(&self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds.
    pub fn as_secs(&self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Scales by a non-negative factor.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        debug_assert!(factor >= 0.0, "negative duration scale");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_ms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_ms(1.5).as_nanos(), 1_500_000);
        assert_eq!(SimTime::from_secs(2.0).as_ms(), 2000.0);
        assert_eq!(SimDuration::from_us(3.0).as_nanos(), 3_000);
        assert!((SimDuration::from_ms(0.25).as_ms() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ms(10.0) + SimDuration::from_ms(5.0);
        assert_eq!(t, SimTime::from_ms(15.0));
        assert_eq!(t - SimTime::from_ms(10.0), SimDuration::from_ms(5.0));
        // Saturating: earlier - later = 0.
        assert_eq!(
            SimTime::from_ms(1.0) - SimTime::from_ms(2.0),
            SimDuration::ZERO
        );
        let mut d = SimDuration::from_ms(1.0);
        d += SimDuration::from_ms(2.0);
        assert_eq!(d, SimDuration::from_ms(3.0));
        assert_eq!(d * 2, SimDuration::from_ms(6.0));
        assert_eq!(d / 3, SimDuration::from_ms(1.0));
    }

    #[test]
    fn ordering_and_since() {
        assert!(SimTime::from_ms(1.0) < SimTime::from_ms(2.0));
        assert_eq!(
            SimTime::from_ms(5.0).since(SimTime::from_ms(2.0)),
            SimDuration::from_ms(3.0)
        );
        assert_eq!(
            SimTime::ZERO.since(SimTime::from_ms(2.0)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn sum_and_scale() {
        let total: SimDuration = [1.0, 2.0, 3.0]
            .iter()
            .map(|&ms| SimDuration::from_ms(ms))
            .sum();
        assert_eq!(total, SimDuration::from_ms(6.0));
        assert_eq!(
            SimDuration::from_ms(2.0).mul_f64(1.5),
            SimDuration::from_ms(3.0)
        );
    }
}
