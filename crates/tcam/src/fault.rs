//! Deterministic fault injection for the TCAM control channel.
//!
//! The paper's motivation (§2) is built on firmware that misbehaves: acks
//! arrive late, latency spikes with occupancy, and switches sometimes
//! report success for operations they never applied. [`FaultPlan`] turns
//! those behaviours into a *seeded, reproducible* adversary that a
//! [`TcamDevice`](crate::TcamDevice) consults before every control-plane
//! action:
//!
//! * **transient write failures** — the op is rejected with
//!   [`TcamError::ChannelBusy`](crate::TcamError::ChannelBusy); a retry may
//!   succeed;
//! * **latency spikes** — the op succeeds but its charged latency is
//!   multiplied (occupancy-dependent firmware GC pauses);
//! * **control-channel outages** — a window of consecutive ops all fail
//!   with [`TcamError::Outage`](crate::TcamError::Outage), modelling a
//!   wedged agent or management-link flap;
//! * **silent drops** — the device acks an insert (or delete) with a
//!   plausible latency but applies nothing, leaving the controller's view
//!   and the hardware out of sync until a reconciliation audit catches it.
//!
//! Every decision is a pure function of the seed and the op sequence, so a
//! chaos run reproduces byte-for-byte from `HERMES_FAULT_SEED`.

use hermes_util::rng::{Rng, SeedableRng, StdRng};

/// What the fault layer decided for one control-plane action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultDecision {
    /// Execute normally.
    Normal,
    /// Reject with a transient [`TcamError::ChannelBusy`](crate::TcamError).
    Fail,
    /// Ack success without applying the operation.
    SilentDrop,
    /// Execute, but multiply the charged latency by the factor.
    Spike(f64),
    /// Reject: the control channel is inside an outage window.
    Outage,
}

/// Lifetime counters for injected faults (telemetry for chaos runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Ops the plan examined.
    pub ops_seen: u64,
    /// Transient write failures injected.
    pub write_failures: u64,
    /// Ops acked but silently dropped.
    pub silent_drops: u64,
    /// Ops whose latency was spiked.
    pub latency_spikes: u64,
    /// Ops rejected inside an outage window.
    pub outage_rejections: u64,
}

/// A seeded fault schedule for one device.
///
/// Probabilities are per-op; the outage schedule is op-count driven (an
/// outage of `outage_len` ops opens every `outage_period` ops), which keeps
/// the plan deterministic without needing a clock.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability a write (insert/modify) fails transiently.
    pub write_fail_prob: f64,
    /// Probability an insert or delete is acked but not applied.
    pub silent_drop_prob: f64,
    /// Probability an op's latency is multiplied by `spike_multiplier`.
    pub latency_spike_prob: f64,
    /// Latency multiplier applied on a spike.
    pub spike_multiplier: f64,
    /// Ops between outage-window starts (`0` disables outages).
    pub outage_period: u64,
    /// Consecutive ops rejected once an outage opens.
    pub outage_len: u64,
    rng: StdRng,
    ops: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan with every fault disabled — useful as a base to tweak.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            write_fail_prob: 0.0,
            silent_drop_prob: 0.0,
            latency_spike_prob: 0.0,
            spike_multiplier: 1.0,
            outage_period: 0,
            outage_len: 0,
            rng: StdRng::seed_from_u64(seed),
            ops: 0,
            stats: FaultStats::default(),
        }
    }

    /// The standard chaos mix used by tests and the CI smoke run: a few
    /// percent of everything, plus a short outage window every 200 ops.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            write_fail_prob: 0.08,
            silent_drop_prob: 0.04,
            latency_spike_prob: 0.05,
            spike_multiplier: 8.0,
            outage_period: 200,
            outage_len: 12,
            ..Self::quiet(seed)
        }
    }

    /// Builds the standard chaos plan from the `HERMES_FAULT_SEED`
    /// environment variable, or `None` when it is unset/unparsable.
    pub fn from_env() -> Option<Self> {
        std::env::var("HERMES_FAULT_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(Self::seeded)
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// `true` while the op counter sits inside an outage window. The op
    /// counter only advances via [`decide`](Self::decide).
    pub fn in_outage(&self) -> bool {
        self.outage_period != 0
            && self.outage_len != 0
            && self.ops % self.outage_period >= self.outage_period.saturating_sub(self.outage_len)
    }

    /// Decides the fate of the next control-plane action. `is_insert` and
    /// `is_delete` select which faults apply: silent drops hit inserts and
    /// deletes (the ops whose loss desynchronizes state), transient write
    /// failures hit everything.
    pub fn decide(&mut self, is_insert: bool, is_delete: bool) -> FaultDecision {
        self.stats.ops_seen += 1;
        let in_outage = self.in_outage();
        self.ops += 1;
        // One decision per op from a fixed number of draws keeps the
        // stream aligned regardless of which branch fires.
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        if in_outage {
            self.stats.outage_rejections += 1;
            return FaultDecision::Outage;
        }
        let mut edge = self.write_fail_prob;
        if roll < edge {
            self.stats.write_failures += 1;
            return FaultDecision::Fail;
        }
        edge += self.silent_drop_prob;
        if roll < edge {
            if is_insert || is_delete {
                self.stats.silent_drops += 1;
                return FaultDecision::SilentDrop;
            }
            return FaultDecision::Normal;
        }
        edge += self.latency_spike_prob;
        if roll < edge {
            self.stats.latency_spikes += 1;
            return FaultDecision::Spike(self.spike_multiplier);
        }
        FaultDecision::Normal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut p = FaultPlan::quiet(7);
        for _ in 0..1000 {
            assert_eq!(p.decide(true, false), FaultDecision::Normal);
        }
        assert_eq!(p.stats().write_failures, 0);
        assert_eq!(p.stats().ops_seen, 1000);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::seeded(42);
        let mut b = FaultPlan::seeded(42);
        for i in 0..5000 {
            assert_eq!(
                a.decide(i % 3 == 0, i % 3 == 1),
                b.decide(i % 3 == 0, i % 3 == 1),
                "decision {i} diverged"
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn outage_windows_fire_on_schedule() {
        let mut p = FaultPlan::quiet(1);
        p.outage_period = 10;
        p.outage_len = 3;
        let mut rejected = 0;
        for _ in 0..100 {
            if p.decide(true, false) == FaultDecision::Outage {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 30, "3 of every 10 ops rejected");
        assert_eq!(p.stats().outage_rejections, 30);
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let mut p = FaultPlan::quiet(9);
        p.write_fail_prob = 0.2;
        for _ in 0..10_000 {
            p.decide(true, false);
        }
        let f = p.stats().write_failures as f64 / 10_000.0;
        assert!((f - 0.2).abs() < 0.02, "observed failure rate {f}");
    }

    #[test]
    fn silent_drops_only_hit_inserts_and_deletes() {
        let mut p = FaultPlan::quiet(3);
        p.silent_drop_prob = 1.0;
        assert_eq!(p.decide(true, false), FaultDecision::SilentDrop);
        assert_eq!(p.decide(false, true), FaultDecision::SilentDrop);
        assert_eq!(p.decide(false, false), FaultDecision::Normal);
    }
}
