//! Deterministic fault injection for the TCAM control channel.
//!
//! The paper's motivation (§2) is built on firmware that misbehaves: acks
//! arrive late, latency spikes with occupancy, and switches sometimes
//! report success for operations they never applied. [`FaultPlan`] turns
//! those behaviours into a *seeded, reproducible* adversary that a
//! [`TcamDevice`](crate::TcamDevice) consults before every control-plane
//! action:
//!
//! * **transient write failures** — the op is rejected with
//!   [`TcamError::ChannelBusy`](crate::TcamError::ChannelBusy); a retry may
//!   succeed;
//! * **latency spikes** — the op succeeds but its charged latency is
//!   multiplied (occupancy-dependent firmware GC pauses);
//! * **control-channel outages** — a window of consecutive ops all fail
//!   with [`TcamError::Outage`](crate::TcamError::Outage), modelling a
//!   wedged agent or management-link flap;
//! * **silent drops** — the device acks an insert (or delete) with a
//!   plausible latency but applies nothing, leaving the controller's view
//!   and the hardware out of sync until a reconciliation audit catches it;
//! * **crash-class faults** — every `crash_period` ops the *switch itself*
//!   goes down: a full TCAM wipe (cold reboot), a partial wipe retaining a
//!   seeded survivor subset (warm reboot with ECC/firmware salvage), or a
//!   pure control-channel disconnect with state intact. The device drops
//!   its control session either way and rejects everything with
//!   [`TcamError::Disconnected`](crate::TcamError::Disconnected) until the
//!   controller reconnects and resyncs.
//!
//! Every decision is a pure function of the seed and the op sequence, so a
//! chaos run reproduces byte-for-byte from `HERMES_FAULT_SEED`. Crash
//! parameters (kind, survivor subset, reconnect denials) are drawn from a
//! *separate* seeded stream, so arming crashes never perturbs the per-op
//! fault sequence of an existing seed.

use hermes_util::rng::{Rng, SeedableRng, StdRng};

/// Salt mixed into the plan seed for the crash-parameter stream, keeping
/// it independent of the per-op fault stream (b"HERMESCR").
const CRASH_STREAM_SALT: u64 = 0x4845_524d_4553_4352;

/// What the fault layer decided for one control-plane action.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultDecision {
    /// Execute normally.
    Normal,
    /// Reject with a transient [`TcamError::ChannelBusy`](crate::TcamError).
    Fail,
    /// Ack success without applying the operation.
    SilentDrop,
    /// Execute, but multiply the charged latency by the factor.
    Spike(f64),
    /// Reject: the control channel is inside an outage window.
    Outage,
    /// The switch crashes: the device mangles its state per the spec,
    /// drops the control session, and rejects this op.
    Crash(CrashSpec),
}

/// How a crash mangles the device's TCAM state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CrashKind {
    /// Cold reboot: the TCAM loses every entry in every slice.
    Wipe,
    /// Warm reboot with partial salvage: each entry independently survives
    /// with the given probability, drawn from the crash's survivor seed.
    Partial {
        /// Per-entry survival probability.
        survivor_prob: f64,
    },
    /// The tables survive intact but the control session is torn down;
    /// only the reconnect handshake is lost time.
    Disconnect,
}

/// One scheduled crash, fully determined by the plan seed and op count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashSpec {
    /// What happens to the TCAM contents.
    pub kind: CrashKind,
    /// Seeds the survivor-subset draw for [`CrashKind::Partial`].
    pub survivor_seed: u64,
    /// Reconnect attempts the device rejects before the session comes
    /// back (models a switch still booting).
    pub reconnect_denials: u32,
}

/// Lifetime counters for injected faults (telemetry for chaos runs).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Ops the plan examined.
    pub ops_seen: u64,
    /// Transient write failures injected.
    pub write_failures: u64,
    /// Ops acked but silently dropped.
    pub silent_drops: u64,
    /// Ops whose latency was spiked.
    pub latency_spikes: u64,
    /// Ops rejected inside an outage window.
    pub outage_rejections: u64,
    /// Crash-class faults injected (wipe + partial + disconnect).
    pub crashes: u64,
}

/// Device-side counters for crash-class faults as they were *applied* —
/// what actually happened to the tables and the control session, as
/// opposed to [`FaultStats`], which counts what the plan decided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrashStats {
    /// Crashes applied to the device.
    pub crashes: u64,
    /// Crashes that wiped every slice.
    pub wipes: u64,
    /// Crashes that retained a partial survivor subset.
    pub partials: u64,
    /// Crashes that only tore down the control session.
    pub disconnects: u64,
    /// TCAM entries lost across all crashes.
    pub entries_lost: u64,
    /// TCAM entries that survived partial-retention crashes.
    pub entries_retained: u64,
    /// Reconnect attempts the controller made.
    pub reconnect_attempts: u64,
    /// Reconnect attempts the (still-booting) device denied.
    pub reconnects_denied: u64,
}

/// A seeded fault schedule for one device.
///
/// Probabilities are per-op; the outage schedule is op-count driven (an
/// outage of `outage_len` ops opens every `outage_period` ops), which keeps
/// the plan deterministic without needing a clock.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    /// Probability a write (insert/modify) fails transiently.
    pub write_fail_prob: f64,
    /// Probability an insert or delete is acked but not applied.
    pub silent_drop_prob: f64,
    /// Probability an op's latency is multiplied by `spike_multiplier`.
    pub latency_spike_prob: f64,
    /// Latency multiplier applied on a spike.
    pub spike_multiplier: f64,
    /// Ops between outage-window starts (`0` disables outages).
    pub outage_period: u64,
    /// Consecutive ops rejected once an outage opens.
    pub outage_len: u64,
    /// Ops between crash-class faults (`0` disables crashes).
    pub crash_period: u64,
    /// Probability a crash is a full TCAM wipe.
    pub crash_wipe_prob: f64,
    /// Probability a crash retains a partial survivor subset; the
    /// remaining mass is a pure control-channel disconnect.
    pub crash_partial_prob: f64,
    /// Per-entry survival probability for partial-retention crashes.
    pub survivor_prob: f64,
    /// Reconnect denials per crash are drawn uniformly in `0..=max`.
    pub max_reconnect_denials: u32,
    rng: StdRng,
    /// Dedicated stream for crash parameters: consumed only at the
    /// deterministic crash points, so arming or disarming crashes leaves
    /// the per-op `rng` sequence untouched.
    crash_rng: StdRng,
    ops: u64,
    stats: FaultStats,
}

impl FaultPlan {
    /// A plan with every fault disabled — useful as a base to tweak.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            write_fail_prob: 0.0,
            silent_drop_prob: 0.0,
            latency_spike_prob: 0.0,
            spike_multiplier: 1.0,
            outage_period: 0,
            outage_len: 0,
            crash_period: 0,
            crash_wipe_prob: 0.0,
            crash_partial_prob: 0.0,
            survivor_prob: 1.0,
            max_reconnect_denials: 0,
            rng: StdRng::seed_from_u64(seed),
            crash_rng: StdRng::seed_from_u64(seed ^ CRASH_STREAM_SALT),
            ops: 0,
            stats: FaultStats::default(),
        }
    }

    /// The standard chaos mix used by tests and the CI smoke run: a few
    /// percent of everything, plus a short outage window every 200 ops.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            write_fail_prob: 0.08,
            silent_drop_prob: 0.04,
            latency_spike_prob: 0.05,
            spike_multiplier: 8.0,
            outage_period: 200,
            outage_len: 12,
            ..Self::quiet(seed)
        }
    }

    /// The crash-class chaos mix: the per-op faults of [`seeded`] plus a
    /// switch crash every 300 ops — 40% full wipes, 35% partial retention
    /// (each entry survives with p=0.5), 25% pure disconnects — with up
    /// to 3 reconnect attempts denied while the switch "boots".
    ///
    /// [`seeded`]: Self::seeded
    pub fn crashy(seed: u64) -> Self {
        FaultPlan {
            crash_period: 300,
            crash_wipe_prob: 0.4,
            crash_partial_prob: 0.35,
            survivor_prob: 0.5,
            max_reconnect_denials: 3,
            ..Self::seeded(seed)
        }
    }

    /// Builds the standard chaos plan from the `HERMES_FAULT_SEED`
    /// environment variable, or `None` when it is unset/unparsable.
    pub fn from_env() -> Option<Self> {
        Self::env_seed().map(Self::seeded)
    }

    /// The parsed `HERMES_FAULT_SEED` environment variable, if set.
    pub fn env_seed() -> Option<u64> {
        std::env::var("HERMES_FAULT_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
    }

    /// Injected-fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// `true` while the op counter sits inside an outage window. The op
    /// counter only advances via [`decide`](Self::decide).
    pub fn in_outage(&self) -> bool {
        self.outage_period != 0
            && self.outage_len != 0
            && self.ops % self.outage_period >= self.outage_period.saturating_sub(self.outage_len)
    }

    /// Decides the fate of the next control-plane action. `is_insert` and
    /// `is_delete` select which faults apply: silent drops hit inserts and
    /// deletes (the ops whose loss desynchronizes state), transient write
    /// failures hit everything.
    pub fn decide(&mut self, is_insert: bool, is_delete: bool) -> FaultDecision {
        self.stats.ops_seen += 1;
        let in_outage = self.in_outage();
        self.ops += 1;
        // One decision per op from a fixed number of draws keeps the
        // stream aligned regardless of which branch fires.
        let roll: f64 = self.rng.gen_range(0.0..1.0);
        // Crash points are op-count driven and their parameters come from
        // the dedicated crash stream, so the main roll above stays aligned
        // with crash-free plans sharing the seed.
        if self.crash_period != 0 && self.ops.is_multiple_of(self.crash_period) {
            self.stats.crashes += 1;
            return FaultDecision::Crash(self.draw_crash());
        }
        if in_outage {
            self.stats.outage_rejections += 1;
            return FaultDecision::Outage;
        }
        let mut edge = self.write_fail_prob;
        if roll < edge {
            self.stats.write_failures += 1;
            return FaultDecision::Fail;
        }
        edge += self.silent_drop_prob;
        if roll < edge {
            if is_insert || is_delete {
                self.stats.silent_drops += 1;
                return FaultDecision::SilentDrop;
            }
            return FaultDecision::Normal;
        }
        edge += self.latency_spike_prob;
        if roll < edge {
            self.stats.latency_spikes += 1;
            return FaultDecision::Spike(self.spike_multiplier);
        }
        FaultDecision::Normal
    }

    /// Draws one crash's parameters from the dedicated crash stream.
    fn draw_crash(&mut self) -> CrashSpec {
        let k: f64 = self.crash_rng.gen_range(0.0..1.0);
        let kind = if k < self.crash_wipe_prob {
            CrashKind::Wipe
        } else if k < self.crash_wipe_prob + self.crash_partial_prob {
            CrashKind::Partial {
                survivor_prob: self.survivor_prob,
            }
        } else {
            CrashKind::Disconnect
        };
        CrashSpec {
            kind,
            survivor_seed: self.crash_rng.gen_range(0..u64::MAX),
            reconnect_denials: if self.max_reconnect_denials == 0 {
                0
            } else {
                self.crash_rng.gen_range(0..=self.max_reconnect_denials)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_never_fires() {
        let mut p = FaultPlan::quiet(7);
        for _ in 0..1000 {
            assert_eq!(p.decide(true, false), FaultDecision::Normal);
        }
        assert_eq!(p.stats().write_failures, 0);
        assert_eq!(p.stats().ops_seen, 1000);
    }

    #[test]
    fn same_seed_same_decisions() {
        let mut a = FaultPlan::seeded(42);
        let mut b = FaultPlan::seeded(42);
        for i in 0..5000 {
            assert_eq!(
                a.decide(i % 3 == 0, i % 3 == 1),
                b.decide(i % 3 == 0, i % 3 == 1),
                "decision {i} diverged"
            );
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn outage_windows_fire_on_schedule() {
        let mut p = FaultPlan::quiet(1);
        p.outage_period = 10;
        p.outage_len = 3;
        let mut rejected = 0;
        for _ in 0..100 {
            if p.decide(true, false) == FaultDecision::Outage {
                rejected += 1;
            }
        }
        assert_eq!(rejected, 30, "3 of every 10 ops rejected");
        assert_eq!(p.stats().outage_rejections, 30);
    }

    #[test]
    fn probabilities_are_roughly_honoured() {
        let mut p = FaultPlan::quiet(9);
        p.write_fail_prob = 0.2;
        for _ in 0..10_000 {
            p.decide(true, false);
        }
        let f = p.stats().write_failures as f64 / 10_000.0;
        assert!((f - 0.2).abs() < 0.02, "observed failure rate {f}");
    }

    #[test]
    fn silent_drops_only_hit_inserts_and_deletes() {
        let mut p = FaultPlan::quiet(3);
        p.silent_drop_prob = 1.0;
        assert_eq!(p.decide(true, false), FaultDecision::SilentDrop);
        assert_eq!(p.decide(false, true), FaultDecision::SilentDrop);
        assert_eq!(p.decide(false, false), FaultDecision::Normal);
    }

    #[test]
    fn crashes_fire_on_schedule_and_reproduce() {
        let mut a = FaultPlan::quiet(5);
        a.crash_period = 10;
        a.crash_wipe_prob = 0.4;
        a.crash_partial_prob = 0.35;
        a.max_reconnect_denials = 3;
        let mut b = a.clone();
        let mut crash_ops = Vec::new();
        for i in 0..100 {
            let da = a.decide(true, false);
            assert_eq!(da, b.decide(true, false), "decision {i} diverged");
            if let FaultDecision::Crash(_) = da {
                crash_ops.push(i);
            }
        }
        assert_eq!(crash_ops, vec![9, 19, 29, 39, 49, 59, 69, 79, 89, 99]);
        assert_eq!(a.stats().crashes, 10);
    }

    #[test]
    fn crash_stream_does_not_perturb_per_op_faults() {
        // Same seed, crashes armed vs not: every non-crash decision must
        // be identical — the crash stream is independent.
        let mut plain = FaultPlan::seeded(77);
        let mut crashy = FaultPlan::seeded(77);
        crashy.crash_period = 7;
        for i in 0..500 {
            let a = plain.decide(i % 2 == 0, i % 2 == 1);
            let b = crashy.decide(i % 2 == 0, i % 2 == 1);
            if !matches!(b, FaultDecision::Crash(_)) {
                assert_eq!(a, b, "op {i}: crash stream leaked into per-op faults");
            }
        }
    }

    #[test]
    fn crashy_mix_draws_all_kinds() {
        let mut p = FaultPlan::crashy(11);
        p.crash_period = 1; // every op crashes; the mix should cover all kinds
        let (mut wipes, mut partials, mut disconnects) = (0, 0, 0);
        for _ in 0..300 {
            match p.decide(true, false) {
                FaultDecision::Crash(spec) => match spec.kind {
                    CrashKind::Wipe => wipes += 1,
                    CrashKind::Partial { survivor_prob } => {
                        assert_eq!(survivor_prob, 0.5);
                        partials += 1;
                    }
                    CrashKind::Disconnect => disconnects += 1,
                },
                other => panic!("expected a crash, got {other:?}"),
            }
        }
        assert!(wipes > 0 && partials > 0 && disconnects > 0);
        assert_eq!(p.stats().crashes, 300);
    }

    #[test]
    fn seeded_plan_never_crashes() {
        let mut p = FaultPlan::seeded(7);
        for _ in 0..5000 {
            assert!(!matches!(p.decide(true, false), FaultDecision::Crash(_)));
        }
        assert_eq!(p.stats().crashes, 0);
    }
}
