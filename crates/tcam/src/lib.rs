//! # hermes-tcam — TCAM device model
//!
//! The switch-hardware substrate of the Hermes reproduction (CoNEXT'17):
//!
//! * [`table`] — a priority-ordered TCAM table that accounts for the entry
//!   *shifts* each insertion causes (the root cause of slow, variable
//!   control-plane actions, §2.1 of the paper);
//! * [`perf`] — empirical per-switch latency models built from the
//!   occupancy→update-rate measurements the paper reprints in Table 1
//!   (Pica8 P-3290, Dell 8132F, plus a synthesized HP 5406zl);
//! * [`device`] — a switch ASIC with TCAM *carving* into slices, the SDK
//!   capability Hermes relies on (§6);
//! * [`fault`] — a seeded, deterministic fault injector for the control
//!   channel (transient failures, latency spikes, outages, silent drops,
//!   and crash-class faults: wipes, partial retention, disconnects);
//! * [`time`] — deterministic simulated time used across the workspace.
//!
//! ## Example: reproducing a Table 1 measurement
//!
//! ```
//! use hermes_tcam::perf::SwitchModel;
//!
//! let pica8 = SwitchModel::pica8_p3290();
//! // With 1000 entries installed the Pica8 sustains ~23 updates/s.
//! let rate = pica8.update_rate(1000);
//! assert!((rate - 23.0).abs() < 1.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod device;
pub mod fault;
pub mod perf;
pub mod table;
pub mod time;

pub use device::{BatchOpReport, LookupResult, MissBehavior, OpReport, Slice, TcamDevice};
pub use fault::{CrashKind, CrashSpec, CrashStats, FaultDecision, FaultPlan, FaultStats};
pub use perf::SwitchModel;
pub use table::{BatchReport, PlacementStrategy, TableStats, TcamError, TcamOp, TcamTable};
pub use time::{SimDuration, SimTime};
