//! The TCAM table model.
//!
//! A TCAM stores entries at physical addresses; on lookup *every* entry is
//! compared in parallel and the lowest-address match wins. To honour rule
//! priorities the switch software must therefore keep entries physically
//! sorted by priority — and that is exactly why insertions are expensive:
//! making room at the right address means *shifting* existing entries
//! (§2.1: "the insertion time is a function of the time to perform this
//! move which is proportional to the number of entries that must be moved").
//!
//! [`TcamTable`] models the entry list plus the shift accounting. It does
//! not know about latency — the [`perf`](crate::perf) module converts shift
//! counts into simulated time per switch model.

use hermes_rules::prelude::*;

/// How the switch software packs entries into the physical TCAM, which
/// determines how many entries move per insertion. Real switches differ
/// (§2.1: insertion-order effects of 10× between ascending and descending
/// priority order), and Tango-style baselines exploit knowledge of this
/// strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Entries packed toward low addresses; an insertion at position `p`
    /// shifts everything below it down. Inserting in *descending* priority
    /// order is cheap (always appends).
    PackedLow,
    /// Entries packed toward high addresses; an insertion shifts everything
    /// above it up. Inserting in *ascending* priority order is cheap.
    PackedHigh,
    /// The management software moves whichever side is smaller (free space
    /// kept at both ends). Insertions in the middle still cost ~half the
    /// table.
    Balanced,
}

/// Why a TCAM operation was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcamError {
    /// The table is at capacity.
    Full,
    /// No entry with the given rule id exists.
    NotFound(RuleId),
    /// An entry with this rule id already exists (ids must be unique per
    /// table).
    Duplicate(RuleId),
    /// The control channel transiently rejected the op (injected fault);
    /// a retry may succeed.
    ChannelBusy,
    /// The control channel is inside an outage window (injected fault);
    /// retries fail until the window closes.
    Outage,
}

impl TcamError {
    /// `true` for errors a retry can clear (channel faults), `false` for
    /// state errors (full / not-found / duplicate) where retrying is
    /// pointless.
    pub fn is_transient(&self) -> bool {
        matches!(self, TcamError::ChannelBusy | TcamError::Outage)
    }
}

impl std::fmt::Display for TcamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcamError::Full => write!(f, "TCAM table full"),
            TcamError::NotFound(id) => write!(f, "no TCAM entry for rule {id}"),
            TcamError::Duplicate(id) => write!(f, "duplicate TCAM entry for rule {id}"),
            TcamError::ChannelBusy => write!(f, "TCAM control channel busy (transient)"),
            TcamError::Outage => write!(f, "TCAM control channel outage"),
        }
    }
}

impl std::error::Error for TcamError {}

/// Counters accumulated over the table's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of successful insertions.
    pub inserts: u64,
    /// Number of successful deletions.
    pub deletes: u64,
    /// Number of successful in-place modifications.
    pub modifies: u64,
    /// Total entries shifted across all insertions.
    pub total_shifts: u64,
    /// Number of lookups served.
    pub lookups: u64,
}

/// The outcome of a successful mutation: how many entries physically moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpShifts {
    /// Entries moved to make room (0 for appends, deletions and in-place
    /// modifications).
    pub shifts: usize,
    /// Occupancy *before* the operation (the latency model keys off this).
    pub occupancy_before: usize,
}

/// A priority-ordered TCAM table with bounded capacity.
///
/// Entries are kept sorted by descending [`Priority`]; among equal
/// priorities, earlier-inserted entries match first (standard switch-agent
/// behaviour). Lookup returns the first matching entry, which is exactly
/// the highest-priority match.
///
/// ```
/// use hermes_rules::prelude::*;
/// use hermes_tcam::{PlacementStrategy, TcamTable};
///
/// let mut table = TcamTable::new(1024, PlacementStrategy::PackedLow);
/// let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
/// let narrow: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
/// table.insert(Rule::new(1, wide.to_key(), Priority(1), Action::Forward(1))).unwrap();
/// let shifts = table.insert(Rule::new(2, narrow.to_key(), Priority(9), Action::Drop)).unwrap();
/// // The higher-priority rule displaced the earlier entry.
/// assert_eq!(shifts.shifts, 1);
/// // Lookup returns the highest-priority match.
/// let pkt = (u32::from_be_bytes([10, 1, 2, 3]) as u128) << 96;
/// assert_eq!(table.peek(pkt).unwrap().action, Action::Drop);
/// ```
#[derive(Clone, Debug)]
pub struct TcamTable {
    entries: Vec<Rule>,
    capacity: usize,
    strategy: PlacementStrategy,
    stats: TableStats,
}

impl TcamTable {
    /// An empty table with the given capacity and placement strategy.
    pub fn new(capacity: usize, strategy: PlacementStrategy) -> Self {
        TcamTable {
            entries: Vec::with_capacity(capacity.min(4096)),
            capacity,
            strategy,
            stats: TableStats::default(),
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free entries.
    pub fn free(&self) -> usize {
        self.capacity - self.entries.len()
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.entries.len() as f64 / self.capacity as f64
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The placement strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The entries in match order (highest precedence first).
    pub fn entries(&self) -> &[Rule] {
        &self.entries
    }

    /// Looks up a rule by id.
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        self.entries.iter().find(|r| r.id == id)
    }

    /// `true` when an entry with this id exists.
    pub fn contains(&self, id: RuleId) -> bool {
        self.get(id).is_some()
    }

    /// The position a new rule of priority `p` would occupy: after every
    /// entry with priority `>= p` (FIFO among equals).
    fn insert_position(&self, p: Priority) -> usize {
        self.entries.partition_point(|r| r.priority >= p)
    }

    /// How many entries must physically move for an insertion at `pos`.
    fn shifts_for(&self, pos: usize) -> usize {
        let below = self.entries.len() - pos;
        let above = pos;
        match self.strategy {
            PlacementStrategy::PackedLow => below,
            PlacementStrategy::PackedHigh => above,
            PlacementStrategy::Balanced => below.min(above),
        }
    }

    /// Inserts a rule, returning the shift count for the latency model.
    ///
    /// Rules with [`Priority::NONE`] carry no ordering requirement: the
    /// switch drops them into any free slot without moving anything (§2.1:
    /// "rules with priorities are five times slower than rules without
    /// priorities"). They sort below all prioritized rules.
    pub fn insert(&mut self, rule: Rule) -> Result<OpShifts, TcamError> {
        if self.entries.len() >= self.capacity {
            return Err(TcamError::Full);
        }
        if self.contains(rule.id) {
            return Err(TcamError::Duplicate(rule.id));
        }
        let occupancy_before = self.entries.len();
        let pos = self.insert_position(rule.priority);
        let shifts = if rule.priority.is_none() {
            0
        } else {
            self.shifts_for(pos)
        };
        self.entries.insert(pos, rule);
        self.stats.inserts += 1;
        self.stats.total_shifts += shifts as u64;
        Ok(OpShifts {
            shifts,
            occupancy_before,
        })
    }

    /// Deletes the rule with the given id. Deletion is an in-place
    /// invalidation in real TCAMs — no shifting (§2.1: "deletion is a simple
    /// and fast operation").
    pub fn delete(&mut self, id: RuleId) -> Result<Rule, TcamError> {
        let pos = self
            .entries
            .iter()
            .position(|r| r.id == id)
            .ok_or(TcamError::NotFound(id))?;
        let rule = self.entries.remove(pos);
        self.stats.deletes += 1;
        Ok(rule)
    }

    /// Modifies the action of an existing rule in place. Constant time in
    /// hardware ("modifying 5000 entries could be six times faster than
    /// adding new flows"). Priority changes are *not* handled here — Hermes
    /// converts them into delete+insert (§4.1).
    pub fn modify_action(&mut self, id: RuleId, action: Action) -> Result<(), TcamError> {
        let rule = self
            .entries
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(TcamError::NotFound(id))?;
        rule.action = action;
        self.stats.modifies += 1;
        Ok(())
    }

    /// Replaces the match key of an existing rule in place (same-priority
    /// match rewrite, also constant time).
    pub fn modify_key(&mut self, id: RuleId, key: TernaryKey) -> Result<(), TcamError> {
        let rule = self
            .entries
            .iter_mut()
            .find(|r| r.id == id)
            .ok_or(TcamError::NotFound(id))?;
        rule.key = key;
        self.stats.modifies += 1;
        Ok(())
    }

    /// TCAM lookup: the first (highest-precedence) entry matching the packet.
    pub fn lookup(&mut self, packet: u128) -> Option<Rule> {
        self.stats.lookups += 1;
        self.entries.iter().find(|r| r.key.matches(packet)).copied()
    }

    /// Lookup without touching statistics (for oracles and tests).
    pub fn peek(&self, packet: u128) -> Option<Rule> {
        self.entries.iter().find(|r| r.key.matches(packet)).copied()
    }

    /// Removes all entries (used when the Rule Manager empties the shadow
    /// table after migration — a batch of in-place invalidations).
    pub fn clear(&mut self) -> usize {
        let n = self.entries.len();
        self.stats.deletes += n as u64;
        self.entries.clear();
        n
    }

    /// Drains and returns all entries (step 1 of the migration workflow
    /// copies rules out of the tables).
    pub fn drain(&mut self) -> Vec<Rule> {
        self.stats.deletes += self.entries.len() as u64;
        std::mem::take(&mut self.entries)
    }

    /// Checks the priority-ordering invariant (debug aid / property tests).
    pub fn check_invariants(&self) -> bool {
        self.entries
            .windows(2)
            .all(|w| w[0].priority >= w[1].priority)
            && self.entries.len() <= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(id as u32))
    }

    #[test]
    fn insert_orders_by_priority() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        t.insert(rule(2, "10.0.0.0/8", 10)).unwrap();
        t.insert(rule(3, "10.0.0.0/8", 1)).unwrap();
        let prios: Vec<u32> = t.entries().iter().map(|r| r.priority.0).collect();
        assert_eq!(prios, vec![10, 5, 1]);
        assert!(t.check_invariants());
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        t.insert(rule(2, "11.0.0.0/8", 5)).unwrap();
        let ids: Vec<u64> = t.entries().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn shift_counting_packed_low() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        // Descending priority: always appends, zero shifts.
        for (i, p) in [50u32, 40, 30, 20, 10].iter().enumerate() {
            let s = t.insert(rule(i as u64, "10.0.0.0/8", *p)).unwrap();
            assert_eq!(s.shifts, 0, "descending insert must not shift");
            assert_eq!(s.occupancy_before, i);
        }
        // A top-priority insert shifts everything.
        let s = t.insert(rule(99, "10.0.0.0/8", 60)).unwrap();
        assert_eq!(s.shifts, 5);
    }

    #[test]
    fn shift_counting_packed_high() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedHigh);
        // Ascending priority: always at the top, zero shifts for PackedHigh.
        for (i, p) in [10u32, 20, 30, 40, 50].iter().enumerate() {
            let s = t.insert(rule(i as u64, "10.0.0.0/8", *p)).unwrap();
            assert_eq!(s.shifts, 0, "ascending insert must not shift");
        }
        let s = t.insert(rule(99, "10.0.0.0/8", 5)).unwrap();
        assert_eq!(s.shifts, 5);
    }

    #[test]
    fn shift_counting_balanced() {
        let mut t = TcamTable::new(16, PlacementStrategy::Balanced);
        for (i, p) in [50u32, 40, 30, 20, 10].iter().enumerate() {
            t.insert(rule(i as u64, "10.0.0.0/8", p * 10)).unwrap();
        }
        // Insert in the middle of 5 entries: min(above, below) = 2.
        let s = t.insert(rule(99, "10.0.0.0/8", 250)).unwrap();
        assert!(s.shifts <= 2, "balanced shifts {} > 2", s.shifts);
    }

    #[test]
    fn none_priority_is_free_and_lowest() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedHigh);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        let s = t.insert(rule(2, "0.0.0.0/0", 0)).unwrap();
        assert_eq!(s.shifts, 0);
        assert_eq!(t.entries().last().unwrap().id.0, 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = TcamTable::new(2, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 1)).unwrap();
        t.insert(rule(2, "10.0.0.0/8", 2)).unwrap();
        assert_eq!(t.insert(rule(3, "10.0.0.0/8", 3)), Err(TcamError::Full));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut t = TcamTable::new(8, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 1)).unwrap();
        assert_eq!(
            t.insert(rule(1, "11.0.0.0/8", 2)),
            Err(TcamError::Duplicate(RuleId(1)))
        );
    }

    #[test]
    fn lookup_returns_highest_priority_match() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "192.168.1.0/24", 1)).unwrap(); // port 1
        t.insert(rule(2, "192.168.1.0/26", 9)).unwrap(); // port 2, higher prio
        let pkt = ("192.168.1.5/32".parse::<Ipv4Prefix>().unwrap().addr() as u128) << 96;
        let hit = t.lookup(pkt).unwrap();
        assert_eq!(hit.id.0, 2);
        // Outside the /26 the /24 matches.
        let pkt2 = ("192.168.1.200/32".parse::<Ipv4Prefix>().unwrap().addr() as u128) << 96;
        assert_eq!(t.lookup(pkt2).unwrap().id.0, 1);
        // Miss entirely.
        let pkt3 = ("10.0.0.1/32".parse::<Ipv4Prefix>().unwrap().addr() as u128) << 96;
        assert!(t.lookup(pkt3).is_none());
        assert_eq!(t.stats().lookups, 3);
    }

    #[test]
    fn delete_and_modify() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        t.insert(rule(2, "11.0.0.0/8", 5)).unwrap();
        t.modify_action(RuleId(1), Action::Drop).unwrap();
        assert_eq!(t.get(RuleId(1)).unwrap().action, Action::Drop);
        let removed = t.delete(RuleId(1)).unwrap();
        assert_eq!(removed.id.0, 1);
        assert_eq!(t.delete(RuleId(1)), Err(TcamError::NotFound(RuleId(1))));
        assert_eq!(
            t.modify_action(RuleId(1), Action::Drop),
            Err(TcamError::NotFound(RuleId(1)))
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().deletes, 1);
        assert_eq!(t.stats().modifies, 1);
    }

    #[test]
    fn clear_and_drain() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        for i in 0..5 {
            t.insert(rule(i, "10.0.0.0/8", (i + 1) as u32)).unwrap();
        }
        let drained = t.clone().drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(t.clear(), 5);
        assert!(t.is_empty());
    }

    #[test]
    fn random_ops_maintain_invariants() {
        use hermes_util::rng::{Rng, SeedableRng};
        let mut rng = hermes_util::rng::rngs::StdRng::seed_from_u64(3);
        let mut t = TcamTable::new(64, PlacementStrategy::Balanced);
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..2000 {
            if live.is_empty() || (rng.gen_bool(0.6) && t.free() > 0) {
                let r = rule(next_id, "10.0.0.0/8", rng.gen_range(0..100));
                if t.insert(r).is_ok() {
                    live.push(next_id);
                }
                next_id += 1;
            } else {
                let i = rng.gen_range(0..live.len());
                let id = live.swap_remove(i);
                t.delete(RuleId(id)).unwrap();
            }
            assert!(t.check_invariants());
        }
    }
}
