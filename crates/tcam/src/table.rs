//! The TCAM table model.
//!
//! A TCAM stores entries at physical addresses; on lookup *every* entry is
//! compared in parallel and the lowest-address match wins. To honour rule
//! priorities the switch software must therefore keep entries physically
//! sorted by priority — and that is exactly why insertions are expensive:
//! making room at the right address means *shifting* existing entries
//! (§2.1: "the insertion time is a function of the time to perform this
//! move which is proportional to the number of entries that must be moved").
//!
//! [`TcamTable`] models the entry list plus the shift accounting. It does
//! not know about latency — the [`perf`](crate::perf) module converts shift
//! counts into simulated time per switch model.
//!
//! ## Storage layout (indexed table)
//!
//! Entries live in fixed-fanout *blocks* (a chunked vector), each block
//! holding a contiguous run of the priority order. A control action touches
//! one block (`O(block)` memmove) instead of the whole table, a per-id
//! `BTreeMap` resolves ids in `O(log n)` instead of a linear scan, and the
//! block boundaries double as the bookkeeping sites for the gap-aware
//! placement policy below. The *modeled* shift counts are unchanged from
//! the dense layout: with zero slack the formulas reproduce the classic
//! PackedLow/PackedHigh/Balanced costs exactly.
//!
//! ## Gap-aware placement (configurable slack)
//!
//! Real switch agents deliberately leave free entries interspersed with
//! used ones so an insertion only shifts until the nearest hole, not until
//! the end of the table. [`TcamTable::set_slack`] configures the number of
//! free slots [`TcamTable::rebuild_layout`] reserves per block; with slack
//! enabled, deletions leave their slot behind as a local gap and insertions
//! shift only to the nearest gap in the strategy's preferred direction.
//! Slack defaults to 0 (the dense legacy layout).
//!
//! ## Batched updates
//!
//! [`TcamTable::apply_batch`] validates a whole [`TcamOp`] sequence
//! atomically, plans the final layout once, and charges one *coalesced*
//! shift plan: an entry disturbed by several ops in the batch moves (and is
//! billed) once, which is where batched control channels get their speedup.

use hermes_rules::prelude::*;
use std::collections::BTreeMap;

/// Target block size for the chunked entry storage; blocks split at twice
/// this length.
const BLOCK_TARGET: usize = 512;
/// Maximum block length before a split.
const BLOCK_MAX: usize = 2 * BLOCK_TARGET;
/// Chunk size [`TcamTable::rebuild_layout`] uses when slack is configured:
/// gaps are only usable at block boundaries, so a sparse layout keeps
/// blocks short to place free slots close to any insertion point.
const GAP_CHUNK: usize = 64;
/// Below this table-plus-batch size, `apply_batch` also computes the exact
/// sequential per-op cost on a scratch copy and charges the minimum — a
/// hard guarantee that a batch is never billed worse than its ops applied
/// singly. Above it, the closed-form coalesced plan is used alone (the
/// scratch replay would dominate the runtime it is modeling).
const NAIVE_CLAMP_LIMIT: usize = 8192;

/// How the switch software packs entries into the physical TCAM, which
/// determines how many entries move per insertion. Real switches differ
/// (§2.1: insertion-order effects of 10× between ascending and descending
/// priority order), and Tango-style baselines exploit knowledge of this
/// strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementStrategy {
    /// Entries packed toward low addresses; an insertion at position `p`
    /// shifts everything below it down. Inserting in *descending* priority
    /// order is cheap (always appends).
    PackedLow,
    /// Entries packed toward high addresses; an insertion shifts everything
    /// above it up. Inserting in *ascending* priority order is cheap.
    PackedHigh,
    /// The management software moves whichever side is smaller (free space
    /// kept at both ends). Insertions in the middle still cost ~half the
    /// table.
    Balanced,
}

/// Why a TCAM operation was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TcamError {
    /// The table is at capacity.
    Full,
    /// No entry with the given rule id exists.
    NotFound(RuleId),
    /// An entry with this rule id already exists (ids must be unique per
    /// table).
    Duplicate(RuleId),
    /// The control channel transiently rejected the op (injected fault);
    /// a retry may succeed.
    ChannelBusy,
    /// The control channel is inside an outage window (injected fault);
    /// retries fail until the window closes.
    Outage,
    /// The device crashed or rebooted and dropped its control session;
    /// every op fails until the controller reconnects and resyncs
    /// (crash-class fault, see [`FaultPlan`](crate::FaultPlan)).
    Disconnected,
}

impl TcamError {
    /// `true` for errors a retry can clear (channel faults), `false` for
    /// state errors (full / not-found / duplicate) where retrying is
    /// pointless.
    pub fn is_transient(&self) -> bool {
        matches!(self, TcamError::ChannelBusy | TcamError::Outage)
    }
}

impl std::fmt::Display for TcamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TcamError::Full => write!(f, "TCAM table full"),
            TcamError::NotFound(id) => write!(f, "no TCAM entry for rule {id}"),
            TcamError::Duplicate(id) => write!(f, "duplicate TCAM entry for rule {id}"),
            TcamError::ChannelBusy => write!(f, "TCAM control channel busy (transient)"),
            TcamError::Outage => write!(f, "TCAM control channel outage"),
            TcamError::Disconnected => {
                write!(f, "TCAM control session lost (device crash; resync required)")
            }
        }
    }
}

impl std::error::Error for TcamError {}

/// Counters accumulated over the table's lifetime.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TableStats {
    /// Number of successful insertions.
    pub inserts: u64,
    /// Number of successful deletions.
    pub deletes: u64,
    /// Number of successful in-place modifications.
    pub modifies: u64,
    /// Total entries shifted across all insertions (and layout rebuilds).
    pub total_shifts: u64,
    /// Number of lookups served.
    pub lookups: u64,
}

/// The outcome of a successful mutation: how many entries physically moved.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpShifts {
    /// Entries moved to make room (0 for appends, deletions and in-place
    /// modifications).
    pub shifts: usize,
    /// Occupancy *before* the operation (the latency model keys off this).
    pub occupancy_before: usize,
}

/// One entry in a batched update sequence (see
/// [`TcamTable::apply_batch`]). Sequential semantics: each op observes the
/// effect of the ops before it in the slice, so `[Delete(x), Insert(x')]`
/// is a replace and `[Insert(y), Delete(y)]` nets to nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TcamOp {
    /// Install a new entry.
    Insert(Rule),
    /// Remove the entry with this id.
    Delete(RuleId),
    /// Rewrite an entry's action in place.
    ModifyAction {
        /// Target entry.
        id: RuleId,
        /// Replacement action.
        action: Action,
    },
    /// Rewrite an entry's match key in place (same priority).
    ModifyKey {
        /// Target entry.
        id: RuleId,
        /// Replacement key.
        key: TernaryKey,
    },
}

impl TcamOp {
    /// The id the op targets.
    pub fn id(&self) -> RuleId {
        match self {
            TcamOp::Insert(r) => r.id,
            TcamOp::Delete(id) => *id,
            TcamOp::ModifyAction { id, .. } | TcamOp::ModifyKey { id, .. } => *id,
        }
    }
}

/// The outcome of a successful [`TcamTable::apply_batch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// Entries physically moved under the coalesced plan (each disturbed
    /// entry billed once). This is what the latency model charges.
    pub shifts: usize,
    /// Modeled cost of the same ops applied singly (exact when the table
    /// is small enough for a scratch replay, a dense-layout estimate
    /// otherwise) — `shifts` is never charged above the exact figure.
    pub naive_shifts: usize,
    /// Net new entries written (inserts surviving the batch).
    pub inserts: usize,
    /// Pre-existing entries removed.
    pub deletes: usize,
    /// In-place modifications applied.
    pub modifies: usize,
    /// Occupancy before the batch.
    pub occupancy_before: usize,
}

/// Sort key for the priority order: `rp` is the bitwise complement of the
/// priority (so higher priorities sort first and [`Priority::NONE`] sorts
/// last) and `seq` breaks ties FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct EntryKey {
    rp: u32,
    seq: u64,
}

impl EntryKey {
    fn new(priority: Priority, seq: u64) -> Self {
        EntryKey {
            rp: !priority.0,
            seq,
        }
    }
}

/// A contiguous run of the priority order plus the free slots reserved
/// inside its address range (gap-aware placement).
#[derive(Clone, Debug, Default)]
struct Block {
    keys: Vec<EntryKey>,
    rules: Vec<Rule>,
    gaps: usize,
}

impl Block {
    fn len(&self) -> usize {
        self.keys.len()
    }

    fn last_key(&self) -> EntryKey {
        *self
            .keys
            .last()
            .expect("INVARIANT: TcamTable never keeps an empty block")
    }
}

/// A priority-ordered TCAM table with bounded capacity.
///
/// Entries are kept sorted by descending [`Priority`]; among equal
/// priorities, earlier-inserted entries match first (standard switch-agent
/// behaviour). Lookup returns the first matching entry, which is exactly
/// the highest-priority match.
///
/// ```
/// use hermes_rules::prelude::*;
/// use hermes_tcam::{PlacementStrategy, TcamTable};
///
/// let mut table = TcamTable::new(1024, PlacementStrategy::PackedLow);
/// let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
/// let narrow: Ipv4Prefix = "10.1.0.0/16".parse().unwrap();
/// table.insert(Rule::new(1, wide.to_key(), Priority(1), Action::Forward(1))).unwrap();
/// let shifts = table.insert(Rule::new(2, narrow.to_key(), Priority(9), Action::Drop)).unwrap();
/// // The higher-priority rule displaced the earlier entry.
/// assert_eq!(shifts.shifts, 1);
/// // Lookup returns the highest-priority match.
/// let pkt = (u32::from_be_bytes([10, 1, 2, 3]) as u128) << 96;
/// assert_eq!(table.peek(pkt).unwrap().action, Action::Drop);
/// ```
#[derive(Clone, Debug)]
pub struct TcamTable {
    blocks: Vec<Block>,
    /// Per-id index: id → its sort key (locates the entry in `O(log n)`).
    by_id: BTreeMap<RuleId, EntryKey>,
    next_seq: u64,
    len: usize,
    capacity: usize,
    strategy: PlacementStrategy,
    /// Free slots `rebuild_layout` reserves per block; 0 = dense layout.
    slack: usize,
    stats: TableStats,
}

impl TcamTable {
    /// An empty table with the given capacity and placement strategy.
    pub fn new(capacity: usize, strategy: PlacementStrategy) -> Self {
        TcamTable {
            blocks: Vec::new(),
            by_id: BTreeMap::new(),
            next_seq: 0,
            len: 0,
            capacity,
            strategy,
            slack: 0,
            stats: TableStats::default(),
        }
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the table holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Remaining free entries (reserved gaps included — they still accept
    /// insertions, just cheaply).
    pub fn free(&self) -> usize {
        self.capacity - self.len
    }

    /// Occupancy as a fraction of capacity in `[0, 1]`.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.len as f64 / self.capacity as f64
    }

    /// Lifetime counters.
    pub fn stats(&self) -> TableStats {
        self.stats
    }

    /// The placement strategy in use.
    pub fn strategy(&self) -> PlacementStrategy {
        self.strategy
    }

    /// The configured per-block slack (0 = dense legacy layout).
    pub fn slack(&self) -> usize {
        self.slack
    }

    /// Configures the gap-aware placement slack: the number of free slots
    /// [`rebuild_layout`](Self::rebuild_layout) reserves per block, and
    /// whether deletions leave their slot behind as a reusable gap. Takes
    /// effect for subsequent operations; call `rebuild_layout` to
    /// redistribute existing entries.
    pub fn set_slack(&mut self, slack: usize) {
        self.slack = slack;
    }

    /// Total free slots currently reserved as in-place gaps.
    pub fn gap_slots(&self) -> usize {
        self.blocks.iter().map(|b| b.gaps).sum()
    }

    /// The entries in match order (highest precedence first). `O(n)` copy;
    /// meant for audits, oracles and tests — use [`iter`](Self::iter) to
    /// walk without copying.
    pub fn entries(&self) -> Vec<Rule> {
        self.iter().copied().collect()
    }

    /// Iterates the entries in match order without copying.
    pub fn iter(&self) -> impl Iterator<Item = &Rule> {
        self.blocks.iter().flat_map(|b| b.rules.iter())
    }

    /// Looks up a rule by id via the per-id index (`O(log n)`).
    pub fn get(&self, id: RuleId) -> Option<&Rule> {
        let key = *self.by_id.get(&id)?;
        let (bi, wi) = self.locate(key)?;
        Some(&self.blocks[bi].rules[wi])
    }

    /// `true` when an entry with this id exists.
    pub fn contains(&self, id: RuleId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// Index of the block containing `key`, plus the offset within it.
    fn locate(&self, key: EntryKey) -> Option<(usize, usize)> {
        let bi = self.blocks.partition_point(|b| b.last_key() < key);
        if bi == self.blocks.len() {
            return None;
        }
        let wi = self.blocks[bi].keys.binary_search(&key).ok()?;
        Some((bi, wi))
    }

    /// Where a new entry with `key` would land: `(block, offset, global)`.
    /// For an empty table returns `(0, 0, 0)`.
    fn insertion_point(&self, key: EntryKey) -> (usize, usize, usize) {
        if self.blocks.is_empty() {
            return (0, 0, 0);
        }
        let mut bi = self.blocks.partition_point(|b| b.last_key() < key);
        if bi == self.blocks.len() {
            // Past the end: append to the final block.
            bi -= 1;
        }
        let wi = self.blocks[bi].keys.partition_point(|k| *k < key);
        let before: usize = self.blocks[..bi].iter().map(Block::len).sum();
        (bi, wi, before + wi)
    }

    /// Physical insert with no shift accounting (the caller has already
    /// planned and billed the move).
    fn raw_insert(&mut self, bi: usize, wi: usize, key: EntryKey, rule: Rule) {
        if self.blocks.is_empty() {
            self.blocks.push(Block::default());
        }
        self.blocks[bi].keys.insert(wi, key);
        self.blocks[bi].rules.insert(wi, rule);
        self.by_id.insert(rule.id, key);
        self.len += 1;
        if self.blocks[bi].len() > BLOCK_MAX {
            self.split_block(bi);
        }
    }

    /// Splits an oversized block in half, dividing its reserved gaps.
    fn split_block(&mut self, bi: usize) {
        let half = self.blocks[bi].len() / 2;
        let keys = self.blocks[bi].keys.split_off(half);
        let rules = self.blocks[bi].rules.split_off(half);
        let gaps = self.blocks[bi].gaps / 2;
        self.blocks[bi].gaps -= gaps;
        self.blocks.insert(bi + 1, Block { keys, rules, gaps });
    }

    /// Physical removal with no shift accounting. In slack mode the freed
    /// slot stays behind as a reusable gap.
    fn raw_remove(&mut self, bi: usize, wi: usize) -> Rule {
        self.blocks[bi].keys.remove(wi);
        let rule = self.blocks[bi].rules.remove(wi);
        self.by_id.remove(&rule.id);
        self.len -= 1;
        if self.slack > 0 {
            self.blocks[bi].gaps += 1;
        }
        if self.blocks[bi].keys.is_empty() {
            // Fold the emptied block's gaps into a neighbour so the slots
            // stay reserved (dropped only when the table empties).
            let gaps = self.blocks[bi].gaps;
            self.blocks.remove(bi);
            if !self.blocks.is_empty() {
                let neighbour = if bi > 0 { bi - 1 } else { 0 };
                self.blocks[neighbour].gaps += gaps;
            }
        }
        rule
    }

    /// Unreserved free slots: capacity not held by entries or gaps. The
    /// dense layouts keep all of it at the strategy's packing boundary.
    fn unreserved(&self) -> usize {
        self.capacity - self.len - self.gap_slots()
    }

    /// Models (and books) the shifts for a single insertion landing at
    /// `(bi, wi)`/global position `pos`: the distance to the nearest free
    /// slot in the strategy's preferred direction. Gaps are modeled at
    /// block granularity — a gap inside block `g` absorbs a forward shift
    /// at `g`'s trailing edge and a backward shift at its leading edge.
    /// With no gaps anywhere (dense layout) this reproduces the classic
    /// formulas: `len - pos` (PackedLow), `pos` (PackedHigh), their min
    /// (Balanced).
    fn plan_single_insert(&mut self, bi: usize, wi: usize, pos: usize) -> usize {
        let (low_cost, low_gap) = self.forward_gap_cost(bi, wi, pos);
        let (high_cost, high_gap) = self.backward_gap_cost(bi, wi, pos);
        let (cost, consume) = match self.strategy {
            PlacementStrategy::PackedLow => (low_cost, low_gap),
            PlacementStrategy::PackedHigh => (high_cost, high_gap),
            PlacementStrategy::Balanced => {
                if low_cost <= high_cost {
                    (low_cost, low_gap)
                } else {
                    (high_cost, high_gap)
                }
            }
        };
        if let Some(g) = consume {
            self.blocks[g].gaps -= 1;
        }
        cost
    }

    /// Cheapest way to open a slot by shifting *forward* (toward high
    /// addresses): the nearest gap-bearing block at-or-after the insertion
    /// block, else the unreserved tail space, else a gap behind. Returns
    /// `(entries moved, gap block to consume)`.
    fn forward_gap_cost(&self, bi: usize, wi: usize, pos: usize) -> (usize, Option<usize>) {
        if self.blocks.is_empty() {
            return (0, None);
        }
        let mut moved = self.blocks[bi].len() - wi;
        if self.blocks[bi].gaps > 0 {
            return (moved, Some(bi));
        }
        for g in bi + 1..self.blocks.len() {
            moved += self.blocks[g].len();
            if self.blocks[g].gaps > 0 {
                return (moved, Some(g));
            }
        }
        if self.unreserved() > 0 {
            return (self.len - pos, None);
        }
        // All free space is reserved behind the insertion point: shift
        // backward to the nearest gap there instead.
        let mut moved = wi;
        for g in (0..bi).rev() {
            if self.blocks[g].gaps > 0 {
                return (moved, Some(g));
            }
            moved += self.blocks[g].len();
        }
        (self.len - pos, None)
    }

    /// Mirror of [`forward_gap_cost`](Self::forward_gap_cost): open a slot
    /// by shifting toward low addresses.
    fn backward_gap_cost(&self, bi: usize, wi: usize, pos: usize) -> (usize, Option<usize>) {
        if self.blocks.is_empty() {
            return (0, None);
        }
        let mut moved = wi;
        if self.blocks[bi].gaps > 0 {
            return (moved, Some(bi));
        }
        for g in (0..bi).rev() {
            moved += self.blocks[g].len();
            if self.blocks[g].gaps > 0 {
                return (moved, Some(g));
            }
        }
        if self.unreserved() > 0 {
            return (pos, None);
        }
        let mut moved = self.blocks[bi].len() - wi;
        for g in bi + 1..self.blocks.len() {
            if self.blocks[g].gaps > 0 {
                return (moved, Some(g));
            }
            moved += self.blocks[g].len();
        }
        (pos, None)
    }

    /// Inserts a rule, returning the shift count for the latency model.
    ///
    /// Rules with [`Priority::NONE`] carry no ordering requirement: the
    /// switch drops them into any free slot without moving anything (§2.1:
    /// "rules with priorities are five times slower than rules without
    /// priorities"). They sort below all prioritized rules.
    pub fn insert(&mut self, rule: Rule) -> Result<OpShifts, TcamError> {
        if self.len >= self.capacity {
            return Err(TcamError::Full);
        }
        if self.contains(rule.id) {
            return Err(TcamError::Duplicate(rule.id));
        }
        let occupancy_before = self.len;
        let key = EntryKey::new(rule.priority, self.next_seq);
        self.next_seq += 1;
        let (bi, wi, pos) = self.insertion_point(key);
        let shifts = if rule.priority.is_none() {
            // Free placement, but the rule still occupies a physical slot:
            // once every free slot is reserved as slack, it must consume
            // the nearest gap or `len + gaps` overruns the capacity and
            // `unreserved` underflows on the next prioritized insert.
            if self.unreserved() == 0 && self.gap_slots() > 0 {
                let consume = match self.strategy {
                    PlacementStrategy::PackedHigh => self.backward_gap_cost(bi, wi, pos).1,
                    _ => self.forward_gap_cost(bi, wi, pos).1,
                };
                if let Some(g) = consume {
                    self.blocks[g].gaps -= 1;
                }
            }
            0
        } else {
            self.plan_single_insert(bi, wi, pos)
        };
        self.raw_insert(bi, wi, key, rule);
        self.stats.inserts += 1;
        self.stats.total_shifts += shifts as u64;
        Ok(OpShifts {
            shifts,
            occupancy_before,
        })
    }

    /// Deletes the rule with the given id. Deletion is an in-place
    /// invalidation in real TCAMs — no shifting (§2.1: "deletion is a simple
    /// and fast operation"). With slack enabled the freed slot stays behind
    /// as a gap that later insertions absorb cheaply.
    pub fn delete(&mut self, id: RuleId) -> Result<Rule, TcamError> {
        let key = *self.by_id.get(&id).ok_or(TcamError::NotFound(id))?;
        let (bi, wi) = self
            .locate(key)
            .expect("INVARIANT: by_id keys always resolve to a stored entry");
        let rule = self.raw_remove(bi, wi);
        self.stats.deletes += 1;
        Ok(rule)
    }

    /// Modifies the action of an existing rule in place. Constant time in
    /// hardware ("modifying 5000 entries could be six times faster than
    /// adding new flows"). Priority changes are *not* handled here — Hermes
    /// converts them into delete+insert (§4.1).
    pub fn modify_action(&mut self, id: RuleId, action: Action) -> Result<(), TcamError> {
        let key = *self.by_id.get(&id).ok_or(TcamError::NotFound(id))?;
        let (bi, wi) = self
            .locate(key)
            .expect("INVARIANT: by_id keys always resolve to a stored entry");
        self.blocks[bi].rules[wi].action = action;
        self.stats.modifies += 1;
        Ok(())
    }

    /// Replaces the match key of an existing rule in place (same-priority
    /// match rewrite, also constant time).
    pub fn modify_key(&mut self, id: RuleId, key: TernaryKey) -> Result<(), TcamError> {
        let k = *self.by_id.get(&id).ok_or(TcamError::NotFound(id))?;
        let (bi, wi) = self
            .locate(k)
            .expect("INVARIANT: by_id keys always resolve to a stored entry");
        self.blocks[bi].rules[wi].key = key;
        self.stats.modifies += 1;
        Ok(())
    }

    /// The one match loop: first (highest-precedence) entry matching the
    /// packet. `lookup` and `peek` both defer here.
    fn scan(&self, packet: u128) -> Option<Rule> {
        self.iter().find(|r| r.key.matches(packet)).copied()
    }

    /// TCAM lookup: the first (highest-precedence) entry matching the packet.
    pub fn lookup(&mut self, packet: u128) -> Option<Rule> {
        self.stats.lookups += 1;
        self.scan(packet)
    }

    /// Lookup without touching statistics (for oracles and tests).
    pub fn peek(&self, packet: u128) -> Option<Rule> {
        self.scan(packet)
    }

    /// Removes all entries (used when the Rule Manager empties the shadow
    /// table after migration — a batch of in-place invalidations).
    pub fn clear(&mut self) -> usize {
        let n = self.len;
        self.stats.deletes += n as u64;
        self.blocks.clear();
        self.by_id.clear();
        self.len = 0;
        n
    }

    /// Drains and returns all entries (step 1 of the migration workflow
    /// copies rules out of the tables).
    pub fn drain(&mut self) -> Vec<Rule> {
        let out: Vec<Rule> = self.entries();
        self.stats.deletes += out.len() as u64;
        self.blocks.clear();
        self.by_id.clear();
        self.len = 0;
        out
    }

    /// Re-lays the whole table out at the configured slack: entries are
    /// re-chunked and every block is topped up with up to `slack` reserved
    /// free slots (while unreserved capacity lasts). Returns the modeled
    /// entry moves (a full relayout touches every entry), which are also
    /// added to [`TableStats::total_shifts`].
    pub fn rebuild_layout(&mut self) -> usize {
        let keys: Vec<EntryKey> = self.blocks.iter().flat_map(|b| b.keys.iter().copied()).collect();
        let rules: Vec<Rule> = self.blocks.iter().flat_map(|b| b.rules.iter().copied()).collect();
        self.blocks.clear();
        let mut budget = self.capacity - self.len;
        let chunk = if self.slack > 0 { GAP_CHUNK } else { BLOCK_TARGET };
        for (kchunk, rchunk) in keys.chunks(chunk).zip(rules.chunks(chunk)) {
            let gaps = self.slack.min(budget);
            budget -= gaps;
            self.blocks.push(Block {
                keys: kchunk.to_vec(),
                rules: rchunk.to_vec(),
                gaps,
            });
        }
        let moved = self.len;
        self.stats.total_shifts += moved as u64;
        moved
    }

    /// Checks the structural invariants (debug aid / property tests):
    /// priority ordering, index consistency, block shape, and that entries
    /// plus reserved gaps fit the capacity.
    pub fn check_invariants(&self) -> bool {
        let mut prev: Option<EntryKey> = None;
        let mut counted = 0;
        for b in &self.blocks {
            if b.keys.is_empty() || b.keys.len() != b.rules.len() || b.len() > BLOCK_MAX + 1 {
                return false;
            }
            for (k, r) in b.keys.iter().zip(&b.rules) {
                if let Some(p) = prev {
                    if *k <= p {
                        return false;
                    }
                }
                prev = Some(*k);
                if k.rp != !r.priority.0 || self.by_id.get(&r.id) != Some(k) {
                    return false;
                }
                counted += 1;
            }
        }
        counted == self.len
            && self.by_id.len() == self.len
            && self.len + self.gap_slots() <= self.capacity.max(self.len)
            && self.len <= self.capacity
    }

    /// Applies a whole op sequence as one planned transaction.
    ///
    /// The batch is **atomic**: every op is validated against the
    /// sequential semantics first, and the first violation
    /// ([`TcamError::Full`] / [`TcamError::Duplicate`] /
    /// [`TcamError::NotFound`]) rejects the entire batch with the table
    /// untouched. On success the final layout is computed once and the
    /// batch is charged a *coalesced* shift plan: an entry disturbed by
    /// several ops moves once, and slots freed by the batch's own deletes
    /// absorb its inserts. The result is observationally equivalent to
    /// applying the ops singly (same final entries, same per-op stats) but
    /// never billed more shifts.
    pub fn apply_batch(&mut self, ops: &[TcamOp]) -> Result<BatchReport, TcamError> {
        let occupancy_before = self.len;
        let plan = self.validate_batch(ops)?;
        let (shifts, naive_shifts) = self.plan_batch_shifts(ops, &plan);
        // Mutate: in-place modifies, then deletes (freeing slots), then the
        // surviving inserts in submission order (fresh seqs keep FIFO).
        for (id, (action, key)) in &plan.modified {
            if let Some(a) = action {
                let k = self.by_id[id];
                let (bi, wi) = self
                    .locate(k)
                    .expect("INVARIANT: validated batch targets existing entries");
                self.blocks[bi].rules[wi].action = *a;
            }
            if let Some(nk) = key {
                let k = self.by_id[id];
                let (bi, wi) = self
                    .locate(k)
                    .expect("INVARIANT: validated batch targets existing entries");
                self.blocks[bi].rules[wi].key = *nk;
            }
        }
        for key in plan.deleted.values() {
            let (bi, wi) = self
                .locate(*key)
                .expect("INVARIANT: validated batch targets existing entries");
            self.raw_remove(bi, wi);
        }
        for id in &plan.pending_order {
            let rule = plan.pending[id];
            let key = EntryKey::new(rule.priority, self.next_seq);
            self.next_seq += 1;
            let (bi, wi, pos) = self.insertion_point(key);
            // Keep the len+gaps ≤ capacity invariant: when all remaining
            // free space is reserved, the insert consumes the nearest gap
            // (the plan already billed the move).
            if self.unreserved() == 0 && self.gap_slots() > 0 {
                let consume = match self.strategy {
                    PlacementStrategy::PackedHigh => self.backward_gap_cost(bi, wi, pos).1,
                    _ => self.forward_gap_cost(bi, wi, pos).1,
                };
                if let Some(g) = consume {
                    self.blocks[g].gaps -= 1;
                }
            }
            self.raw_insert(bi, wi, key, rule);
        }
        self.stats.inserts += plan.n_inserts;
        self.stats.deletes += plan.n_deletes;
        self.stats.modifies += plan.n_modifies;
        self.stats.total_shifts += shifts as u64;
        Ok(BatchReport {
            shifts,
            naive_shifts,
            inserts: plan.pending_order.len(),
            deletes: plan.deleted.len(),
            modifies: plan.modified.len(),
            occupancy_before,
        })
    }

    /// Walks the ops under sequential semantics without touching the
    /// table; errors reject the batch atomically.
    fn validate_batch(&self, ops: &[TcamOp]) -> Result<BatchPlan, TcamError> {
        let mut plan = BatchPlan::default();
        for op in ops {
            match op {
                TcamOp::Insert(rule) => {
                    let live = self.len - plan.deleted.len() + plan.pending.len();
                    if live >= self.capacity {
                        return Err(TcamError::Full);
                    }
                    let exists_in_table =
                        self.contains(rule.id) && !plan.deleted.contains_key(&rule.id);
                    if exists_in_table || plan.pending.contains_key(&rule.id) {
                        return Err(TcamError::Duplicate(rule.id));
                    }
                    plan.pending.insert(rule.id, *rule);
                    plan.pending_order.push(rule.id);
                    plan.n_inserts += 1;
                }
                TcamOp::Delete(id) => {
                    if plan.pending.remove(id).is_some() {
                        plan.pending_order.retain(|p| p != id);
                    } else if self.contains(*id) && !plan.deleted.contains_key(id) {
                        plan.deleted.insert(*id, self.by_id[id]);
                        plan.modified.remove(id);
                    } else {
                        return Err(TcamError::NotFound(*id));
                    }
                    plan.n_deletes += 1;
                }
                TcamOp::ModifyAction { id, action } => {
                    if let Some(r) = plan.pending.get_mut(id) {
                        r.action = *action;
                    } else if self.contains(*id) && !plan.deleted.contains_key(id) {
                        plan.modified.entry(*id).or_default().0 = Some(*action);
                    } else {
                        return Err(TcamError::NotFound(*id));
                    }
                    plan.n_modifies += 1;
                }
                TcamOp::ModifyKey { id, key } => {
                    if let Some(r) = plan.pending.get_mut(id) {
                        r.key = *key;
                    } else if self.contains(*id) && !plan.deleted.contains_key(id) {
                        plan.modified.entry(*id).or_default().1 = Some(*key);
                    } else {
                        return Err(TcamError::NotFound(*id));
                    }
                    plan.n_modifies += 1;
                }
            }
        }
        Ok(plan)
    }

    /// The coalesced shift plan: counts the pre-existing surviving entries
    /// the batch disturbs, letting batch-freed slots and reserved gaps
    /// absorb inserts in the strategy's shift direction. Clamped by an
    /// exact sequential replay on small tables so a batch is never billed
    /// worse than its ops applied singly.
    fn plan_batch_shifts(&self, ops: &[TcamOp], plan: &BatchPlan) -> (usize, usize) {
        // Positions of the batch's events among the *current* entries.
        let mut insert_pos: Vec<usize> = Vec::with_capacity(plan.pending_order.len());
        for id in &plan.pending_order {
            let rule = &plan.pending[id];
            if rule.priority.is_none() {
                continue; // free placement, no ordering pressure
            }
            let key = EntryKey::new(rule.priority, self.next_seq);
            insert_pos.push(self.insertion_point(key).2);
        }
        insert_pos.sort_unstable();
        let mut delete_pos: Vec<usize> = plan
            .deleted
            .values()
            .map(|k| {
                let (bi, wi) = self
                    .locate(*k)
                    .expect("INVARIANT: validated batch targets existing entries");
                self.blocks[..bi].iter().map(Block::len).sum::<usize>() + wi
            })
            .collect();
        delete_pos.sort_unstable();
        // Reserved gaps at block granularity: (boundary position, slots).
        // A gap inside a block is usable at its trailing edge going
        // forward and its leading edge going backward.
        let mut gap_trailing: Vec<(usize, usize)> = Vec::new();
        let mut gap_leading: Vec<(usize, usize)> = Vec::new();
        let mut acc = 0usize;
        for b in &self.blocks {
            if b.gaps > 0 {
                gap_leading.push((acc, b.gaps));
            }
            acc += b.len();
            if b.gaps > 0 {
                gap_trailing.push((acc, b.gaps));
            }
        }
        let fwd = coalesced_moves_forward(self.len, &insert_pos, &delete_pos, &gap_trailing);
        let bwd = coalesced_moves_backward(self.len, &insert_pos, &delete_pos, &gap_leading);
        let formula = match self.strategy {
            PlacementStrategy::PackedLow => fwd,
            PlacementStrategy::PackedHigh => bwd,
            PlacementStrategy::Balanced => fwd.min(bwd),
        };
        // Dense-layout estimate of the per-op sequential cost (for the
        // telemetry "saved" metric when the exact replay is skipped).
        let estimate: usize = insert_pos
            .iter()
            .map(|&p| match self.strategy {
                PlacementStrategy::PackedLow => self.len - p,
                PlacementStrategy::PackedHigh => p,
                PlacementStrategy::Balanced => p.min(self.len - p),
            })
            .sum();
        if self.len + ops.len() <= NAIVE_CLAMP_LIMIT {
            let naive = self.replay_singly(ops);
            (formula.min(naive), naive)
        } else {
            (formula.min(estimate), estimate)
        }
    }

    /// Exact sequential cost: the same ops applied singly to a scratch
    /// copy. Only used under [`NAIVE_CLAMP_LIMIT`].
    fn replay_singly(&self, ops: &[TcamOp]) -> usize {
        let mut scratch = self.clone();
        let mut total = 0usize;
        for op in ops {
            match op {
                TcamOp::Insert(rule) => {
                    if let Ok(s) = scratch.insert(*rule) {
                        total += s.shifts;
                    }
                }
                TcamOp::Delete(id) => {
                    // INVARIANT: scratch-copy replay measures shift cost
                    // only; a failed op costs zero shifts, same as the
                    // real sequential path it mirrors.
                    let _ = scratch.delete(*id);
                }
                TcamOp::ModifyAction { id, action } => {
                    // INVARIANT: scratch-copy replay; see Delete above.
                    let _ = scratch.modify_action(*id, *action);
                }
                TcamOp::ModifyKey { id, key } => {
                    // INVARIANT: scratch-copy replay; see Delete above.
                    let _ = scratch.modify_key(*id, *key);
                }
            }
        }
        total
    }
}

/// Sequential-walk state for a validated batch.
#[derive(Default)]
struct BatchPlan {
    /// Rules to be inserted at end-state, by id.
    pending: BTreeMap<RuleId, Rule>,
    /// Submission order of the surviving inserts (FIFO among equals).
    pending_order: Vec<RuleId>,
    /// Pre-existing entries the batch removes, with their sort keys.
    deleted: BTreeMap<RuleId, EntryKey>,
    /// Pre-existing entries modified in place: final `(action, key)`.
    modified: BTreeMap<RuleId, (Option<Action>, Option<TernaryKey>)>,
    /// Per-op tallies (sequential semantics: an insert later deleted still
    /// counts one insert and one delete).
    n_inserts: u64,
    n_deletes: u64,
    n_modifies: u64,
}

/// Entries moved when every insert opens its slot by shifting *forward*
/// (toward high addresses). A left-to-right sweep carries the unabsorbed
/// insert flow; batch-freed slots and reserved gaps cancel flow arriving
/// from the left, and whatever remains spills into the tail. An entry is
/// billed iff any flow crosses it — i.e. each disturbed entry exactly once.
fn coalesced_moves_forward(
    len: usize,
    insert_pos: &[usize],
    delete_pos: &[usize],
    gaps: &[(usize, usize)],
) -> usize {
    let mut events: BTreeMap<usize, (usize, usize, bool)> = BTreeMap::new();
    for &p in insert_pos {
        events.entry(p).or_insert((0, 0, false)).0 += 1;
    }
    for &p in delete_pos {
        let e = events.entry(p).or_insert((0, 0, false));
        e.1 += 1;
        e.2 = true;
    }
    for &(p, n) in gaps {
        events.entry(p).or_insert((0, 0, false)).1 += n;
    }
    let mut moved = 0usize;
    let mut flow = 0usize;
    let mut cursor = 0usize;
    for (&pos, &(ins, holes, is_delete)) in &events {
        if flow > 0 {
            moved += pos - cursor;
        }
        cursor = pos;
        flow += ins;
        flow = flow.saturating_sub(holes);
        if is_delete {
            // The entry at this index is removed by the batch: skip it.
            cursor = pos + 1;
        }
    }
    if flow > 0 {
        moved += len - cursor;
    }
    moved
}

/// Mirror of [`coalesced_moves_forward`]: every insert shifts *backward*
/// (toward low addresses), with the spill at the head.
fn coalesced_moves_backward(
    len: usize,
    insert_pos: &[usize],
    delete_pos: &[usize],
    gaps: &[(usize, usize)],
) -> usize {
    // Reflect positions around the table end and reuse the forward sweep.
    // An entry at index i becomes index len-1-i; a boundary position p
    // becomes len-p.
    let ins: Vec<usize> = insert_pos.iter().map(|&p| len - p).collect();
    let del: Vec<usize> = delete_pos.iter().map(|&p| len - 1 - p).collect();
    let g: Vec<(usize, usize)> = gaps.iter().map(|&(p, n)| (len - p, n)).collect();
    coalesced_moves_forward(len, &ins, &del, &g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(id: u64, pfx: &str, prio: u32) -> Rule {
        let p: Ipv4Prefix = pfx.parse().unwrap();
        Rule::new(id, p.to_key(), Priority(prio), Action::Forward(id as u32))
    }

    #[test]
    fn insert_orders_by_priority() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        t.insert(rule(2, "10.0.0.0/8", 10)).unwrap();
        t.insert(rule(3, "10.0.0.0/8", 1)).unwrap();
        let prios: Vec<u32> = t.entries().iter().map(|r| r.priority.0).collect();
        assert_eq!(prios, vec![10, 5, 1]);
        assert!(t.check_invariants());
    }

    #[test]
    fn equal_priority_is_fifo() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        t.insert(rule(2, "11.0.0.0/8", 5)).unwrap();
        let ids: Vec<u64> = t.entries().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![1, 2]);
    }

    #[test]
    fn shift_counting_packed_low() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        // Descending priority: always appends, zero shifts.
        for (i, p) in [50u32, 40, 30, 20, 10].iter().enumerate() {
            let s = t.insert(rule(i as u64, "10.0.0.0/8", *p)).unwrap();
            assert_eq!(s.shifts, 0, "descending insert must not shift");
            assert_eq!(s.occupancy_before, i);
        }
        // A top-priority insert shifts everything.
        let s = t.insert(rule(99, "10.0.0.0/8", 60)).unwrap();
        assert_eq!(s.shifts, 5);
    }

    #[test]
    fn shift_counting_packed_high() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedHigh);
        // Ascending priority: always at the top, zero shifts for PackedHigh.
        for (i, p) in [10u32, 20, 30, 40, 50].iter().enumerate() {
            let s = t.insert(rule(i as u64, "10.0.0.0/8", *p)).unwrap();
            assert_eq!(s.shifts, 0, "ascending insert must not shift");
        }
        let s = t.insert(rule(99, "10.0.0.0/8", 5)).unwrap();
        assert_eq!(s.shifts, 5);
    }

    #[test]
    fn shift_counting_balanced() {
        let mut t = TcamTable::new(16, PlacementStrategy::Balanced);
        for (i, p) in [50u32, 40, 30, 20, 10].iter().enumerate() {
            t.insert(rule(i as u64, "10.0.0.0/8", p * 10)).unwrap();
        }
        // Insert in the middle of 5 entries: min(above, below) = 2.
        let s = t.insert(rule(99, "10.0.0.0/8", 250)).unwrap();
        assert!(s.shifts <= 2, "balanced shifts {} > 2", s.shifts);
    }

    #[test]
    fn none_priority_is_free_and_lowest() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedHigh);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        let s = t.insert(rule(2, "0.0.0.0/0", 0)).unwrap();
        assert_eq!(s.shifts, 0);
        assert_eq!(t.entries().last().unwrap().id.0, 2);
    }

    #[test]
    fn capacity_enforced() {
        let mut t = TcamTable::new(2, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 1)).unwrap();
        t.insert(rule(2, "10.0.0.0/8", 2)).unwrap();
        assert_eq!(t.insert(rule(3, "10.0.0.0/8", 3)), Err(TcamError::Full));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn duplicate_ids_rejected() {
        let mut t = TcamTable::new(8, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 1)).unwrap();
        assert_eq!(
            t.insert(rule(1, "11.0.0.0/8", 2)),
            Err(TcamError::Duplicate(RuleId(1)))
        );
    }

    #[test]
    fn lookup_returns_highest_priority_match() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "192.168.1.0/24", 1)).unwrap(); // port 1
        t.insert(rule(2, "192.168.1.0/26", 9)).unwrap(); // port 2, higher prio
        let pkt = ("192.168.1.5/32".parse::<Ipv4Prefix>().unwrap().addr() as u128) << 96;
        let hit = t.lookup(pkt).unwrap();
        assert_eq!(hit.id.0, 2);
        // Outside the /26 the /24 matches.
        let pkt2 = ("192.168.1.200/32".parse::<Ipv4Prefix>().unwrap().addr() as u128) << 96;
        assert_eq!(t.lookup(pkt2).unwrap().id.0, 1);
        // Miss entirely.
        let pkt3 = ("10.0.0.1/32".parse::<Ipv4Prefix>().unwrap().addr() as u128) << 96;
        assert!(t.lookup(pkt3).is_none());
        assert_eq!(t.stats().lookups, 3);
    }

    #[test]
    fn delete_and_modify() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        t.insert(rule(2, "11.0.0.0/8", 5)).unwrap();
        t.modify_action(RuleId(1), Action::Drop).unwrap();
        assert_eq!(t.get(RuleId(1)).unwrap().action, Action::Drop);
        let removed = t.delete(RuleId(1)).unwrap();
        assert_eq!(removed.id.0, 1);
        assert_eq!(t.delete(RuleId(1)), Err(TcamError::NotFound(RuleId(1))));
        assert_eq!(
            t.modify_action(RuleId(1), Action::Drop),
            Err(TcamError::NotFound(RuleId(1)))
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.stats().deletes, 1);
        assert_eq!(t.stats().modifies, 1);
    }

    #[test]
    fn clear_and_drain() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        for i in 0..5 {
            t.insert(rule(i, "10.0.0.0/8", (i + 1) as u32)).unwrap();
        }
        let drained = t.clone().drain();
        assert_eq!(drained.len(), 5);
        assert_eq!(t.clear(), 5);
        assert!(t.is_empty());
    }

    #[test]
    fn random_ops_maintain_invariants() {
        use hermes_util::rng::{Rng, SeedableRng};
        let mut rng = hermes_util::rng::rngs::StdRng::seed_from_u64(3);
        let mut t = TcamTable::new(64, PlacementStrategy::Balanced);
        let mut next_id = 0u64;
        let mut live: Vec<u64> = Vec::new();
        for _ in 0..2000 {
            if live.is_empty() || (rng.gen_bool(0.6) && t.free() > 0) {
                let r = rule(next_id, "10.0.0.0/8", rng.gen_range(0..100));
                if t.insert(r).is_ok() {
                    live.push(next_id);
                }
                next_id += 1;
            } else {
                let i = rng.gen_range(0..live.len());
                let id = live.swap_remove(i);
                t.delete(RuleId(id)).unwrap();
            }
            assert!(t.check_invariants());
        }
    }

    #[test]
    fn id_index_survives_block_splits() {
        // More than BLOCK_MAX entries forces splits; every id must still
        // resolve through the index.
        let mut t = TcamTable::new(4096, PlacementStrategy::PackedLow);
        for i in 0..3000u64 {
            t.insert(rule(i, "10.0.0.0/8", (i % 37) as u32 + 1)).unwrap();
        }
        assert!(t.check_invariants());
        for i in (0..3000u64).step_by(97) {
            assert_eq!(t.get(RuleId(i)).unwrap().id.0, i);
        }
        assert!(t.get(RuleId(5000)).is_none());
        // Deleting through the index keeps everything consistent.
        for i in (0..3000u64).step_by(3) {
            t.delete(RuleId(i)).unwrap();
        }
        assert!(t.check_invariants());
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn slack_layout_absorbs_inserts_cheaply() {
        // Dense: a top-priority insert into 100 entries shifts all 100.
        let mut dense = TcamTable::new(256, PlacementStrategy::PackedLow);
        for i in 0..100u64 {
            dense.insert(rule(i, "10.0.0.0/8", 1000 - i as u32)).unwrap();
        }
        let d = dense.insert(rule(900, "10.0.0.0/8", 5000)).unwrap();
        assert_eq!(d.shifts, 100);
        // Gap-aware: with slack reserved, the same insert stops at the
        // nearest gap inside the first block.
        let mut sparse = TcamTable::new(256, PlacementStrategy::PackedLow);
        sparse.set_slack(8);
        for i in 0..100u64 {
            sparse.insert(rule(i, "10.0.0.0/8", 1000 - i as u32)).unwrap();
        }
        sparse.rebuild_layout();
        assert!(sparse.gap_slots() > 0);
        let s = sparse.insert(rule(900, "10.0.0.0/8", 5000)).unwrap();
        assert!(s.shifts < 100, "gap-aware shifts {} not reduced", s.shifts);
        assert!(sparse.check_invariants());
    }

    #[test]
    fn slack_delete_leaves_reusable_gap() {
        let mut t = TcamTable::new(64, PlacementStrategy::PackedLow);
        t.set_slack(4);
        for i in 0..10u64 {
            t.insert(rule(i, "10.0.0.0/8", 100 - i as u32)).unwrap();
        }
        assert_eq!(t.gap_slots(), 0);
        t.delete(RuleId(9)).unwrap();
        assert_eq!(t.gap_slots(), 1);
        // The gap absorbs the next displacing insert within the block.
        let s = t.insert(rule(50, "10.0.0.0/8", 500)).unwrap();
        assert_eq!(s.shifts, 9, "shift to the in-block gap, not past it");
        assert_eq!(t.gap_slots(), 0);
        assert!(t.check_invariants());
    }

    #[test]
    fn batch_insert_coalesces_shifts() {
        // 100 entries, then a batch of 10 top-priority inserts: per-op
        // would charge ~100 each (PackedLow), the coalesced plan disturbs
        // each existing entry once.
        let mut t = TcamTable::new(256, PlacementStrategy::PackedLow);
        for i in 0..100u64 {
            t.insert(rule(i, "10.0.0.0/8", 1000 - i as u32)).unwrap();
        }
        let ops: Vec<TcamOp> = (0..10u64)
            .map(|i| TcamOp::Insert(rule(500 + i, "10.0.0.0/8", 5000 + i as u32)))
            .collect();
        let mut singly = t.clone();
        let mut per_op = 0usize;
        for op in &ops {
            if let TcamOp::Insert(r) = op {
                per_op += singly.insert(*r).unwrap().shifts;
            }
        }
        let rep = t.apply_batch(&ops).unwrap();
        assert_eq!(rep.inserts, 10);
        assert!(rep.shifts <= per_op, "{} > per-op {}", rep.shifts, per_op);
        assert!(rep.shifts <= 100, "coalesced plan disturbs each entry once");
        assert_eq!(t.entries(), singly.entries(), "same final table");
        assert!(t.check_invariants());
    }

    #[test]
    fn batch_is_atomic_on_error() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        let before = t.entries();
        let stats_before = t.stats();
        // Second op is invalid: the whole batch must be rejected.
        let ops = vec![
            TcamOp::Insert(rule(2, "11.0.0.0/8", 6)),
            TcamOp::Delete(RuleId(99)),
        ];
        assert_eq!(t.apply_batch(&ops), Err(TcamError::NotFound(RuleId(99))));
        assert_eq!(t.entries(), before);
        assert_eq!(t.stats(), stats_before);
        // Capacity overflow mid-batch also rejects atomically.
        let too_many: Vec<TcamOp> = (10..30u64)
            .map(|i| TcamOp::Insert(rule(i, "10.0.0.0/8", i as u32)))
            .collect();
        assert_eq!(t.apply_batch(&too_many), Err(TcamError::Full));
        assert_eq!(t.entries(), before);
    }

    #[test]
    fn batch_sequential_semantics() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        // Replace id 1, insert-and-delete id 2, modify a pending insert.
        let ops = vec![
            TcamOp::Delete(RuleId(1)),
            TcamOp::Insert(rule(1, "12.0.0.0/8", 7)),
            TcamOp::Insert(rule(2, "13.0.0.0/8", 3)),
            TcamOp::Delete(RuleId(2)),
            TcamOp::Insert(rule(3, "14.0.0.0/8", 9)),
            TcamOp::ModifyAction {
                id: RuleId(3),
                action: Action::Drop,
            },
        ];
        let rep = t.apply_batch(&ops).unwrap();
        assert_eq!((rep.inserts, rep.deletes), (2, 1));
        let ids: Vec<u64> = t.entries().iter().map(|r| r.id.0).collect();
        assert_eq!(ids, vec![3, 1]);
        assert_eq!(t.get(RuleId(3)).unwrap().action, Action::Drop);
        assert!(!t.contains(RuleId(2)));
        assert!(t.check_invariants());
    }

    #[test]
    fn batch_delete_slots_absorb_inserts() {
        // A batch that deletes low-priority entries and inserts
        // high-priority ones reuses the freed slots: cheaper than the
        // naive sum.
        let mut t = TcamTable::new(64, PlacementStrategy::PackedLow);
        for i in 0..40u64 {
            t.insert(rule(i, "10.0.0.0/8", 1000 - i as u32)).unwrap();
        }
        let ops = vec![
            TcamOp::Delete(RuleId(39)),
            TcamOp::Insert(rule(100, "10.0.0.0/8", 2000)),
        ];
        let rep = t.apply_batch(&ops).unwrap();
        // The freed tail slot absorbs the top insert: everything between
        // moves once — exactly the per-op cost here, never more.
        assert!(rep.shifts <= rep.naive_shifts);
        assert!(t.check_invariants());
    }

    #[test]
    fn batch_empty_is_noop() {
        let mut t = TcamTable::new(16, PlacementStrategy::PackedLow);
        t.insert(rule(1, "10.0.0.0/8", 5)).unwrap();
        let rep = t.apply_batch(&[]).unwrap();
        assert_eq!(rep, BatchReport {
            occupancy_before: 1,
            ..BatchReport::default()
        });
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn rebuild_layout_reports_moves_and_respects_capacity() {
        let mut t = TcamTable::new(32, PlacementStrategy::Balanced);
        t.set_slack(64); // more slack than capacity: must clamp
        for i in 0..30u64 {
            t.insert(rule(i, "10.0.0.0/8", i as u32 + 1)).unwrap();
        }
        let moved = t.rebuild_layout();
        assert_eq!(moved, 30);
        assert!(t.len() + t.gap_slots() <= t.capacity());
        assert!(t.check_invariants());
        // The table still accepts inserts up to capacity.
        t.insert(rule(100, "10.0.0.0/8", 50)).unwrap();
        t.insert(rule(101, "10.0.0.0/8", 51)).unwrap();
        assert_eq!(t.len(), 32);
        assert_eq!(t.insert(rule(102, "10.0.0.0/8", 52)), Err(TcamError::Full));
        assert!(t.check_invariants());
    }
}
