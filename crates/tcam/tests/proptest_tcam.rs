//! Property-based tests for the TCAM model: ordering invariants under
//! arbitrary operation sequences, shift-count consistency, and latency
//! model sanity across the whole occupancy range. Runs under the in-tree
//! `hermes_util::check!` harness with pinned default seeds.

use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SimDuration, SwitchModel, TcamError, TcamOp, TcamTable};
use hermes_util::check::{arb, just, one_of, range, vec_of, weighted, zip2, zip3, Gen};

#[derive(Clone, Debug)]
enum Op {
    Insert { prio: u32, pfx_bits: u32, len: u8 },
    Delete { idx: usize },
    ModifyAction { idx: usize, port: u32 },
}

fn op() -> Gen<Op> {
    weighted(vec![
        (
            3,
            zip3(range(0u32..2000), arb::<u32>(), range(8u8..=30)).map(
                |(prio, pfx_bits, len)| Op::Insert { prio, pfx_bits, len },
            ),
        ),
        (1, arb::<usize>().map(|idx| Op::Delete { idx })),
        (
            1,
            zip2(arb::<usize>(), range(0u32..48))
                .map(|(idx, port)| Op::ModifyAction { idx, port }),
        ),
    ])
}

/// Abstract batch op: indices are resolved against the set of live ids at
/// generation-replay time so every concrete batch is valid (the atomic
/// rejection path has its own unit tests).
#[derive(Clone, Debug)]
enum BOp {
    Insert { prio: u32, pfx_bits: u32, len: u8 },
    Delete { idx: usize },
    ModifyAction { idx: usize, port: u32 },
    ModifyKey { idx: usize, pfx_bits: u32, len: u8 },
}

fn batch_op() -> Gen<BOp> {
    weighted(vec![
        (
            4,
            zip3(range(0u32..2000), arb::<u32>(), range(8u8..=30)).map(
                |(prio, pfx_bits, len)| BOp::Insert { prio, pfx_bits, len },
            ),
        ),
        (2, arb::<usize>().map(|idx| BOp::Delete { idx })),
        (
            1,
            zip2(arb::<usize>(), range(0u32..48))
                .map(|(idx, port)| BOp::ModifyAction { idx, port }),
        ),
        (
            1,
            zip3(arb::<usize>(), arb::<u32>(), range(8u8..=30))
                .map(|(idx, pfx_bits, len)| BOp::ModifyKey { idx, pfx_bits, len }),
        ),
    ])
}

/// Raw batch op with *unresolved* ids: duplicates, deletes of dead rules
/// and capacity overruns are all reachable, so the generated batches
/// exercise the atomic-rejection path as often as the happy path.
#[derive(Clone, Debug)]
enum RawOp {
    Insert { id: u64, prio: u32, pfx_bits: u32, len: u8 },
    Delete { id: u64 },
    ModifyAction { id: u64, port: u32 },
    ModifyKey { id: u64, pfx_bits: u32, len: u8 },
}

fn raw_op() -> Gen<RawOp> {
    // Ids from a pool barely larger than the table keeps collisions with
    // live and batch-pending rules frequent.
    let id = || range(0u64..24);
    weighted(vec![
        (
            4,
            zip3(id(), range(0u32..100), zip2(arb::<u32>(), range(8u8..=28))).map(
                |(id, prio, (pfx_bits, len))| RawOp::Insert { id, prio, pfx_bits, len },
            ),
        ),
        (2, id().map(|id| RawOp::Delete { id })),
        (
            1,
            zip2(id(), range(0u32..48)).map(|(id, port)| RawOp::ModifyAction { id, port }),
        ),
        (
            1,
            zip3(id(), arb::<u32>(), range(8u8..=28))
                .map(|(id, pfx_bits, len)| RawOp::ModifyKey { id, pfx_bits, len }),
        ),
    ])
}

fn strategy() -> Gen<PlacementStrategy> {
    one_of(vec![
        just(PlacementStrategy::PackedLow),
        just(PlacementStrategy::PackedHigh),
        just(PlacementStrategy::Balanced),
    ])
}

hermes_util::check! {
    #![cases = 256]

    /// Invariants hold under any op sequence: priority-sorted entries,
    /// capacity respected, shift counts bounded by occupancy.
    fn table_invariants_under_random_ops(
        ops in vec_of(op(), 1..200),
        placement in strategy(),
    ) {
        let mut table = TcamTable::new(64, placement);
        let mut live: Vec<RuleId> = Vec::new();
        let mut next = 0u64;
        for o in ops {
            match o {
                Op::Insert { prio, pfx_bits, len } => {
                    let rule = Rule::new(
                        next,
                        Ipv4Prefix::new(pfx_bits, len).to_key(),
                        Priority(prio),
                        Action::Forward(1),
                    );
                    next += 1;
                    match table.insert(rule) {
                        Ok(shifts) => {
                            assert!(shifts.shifts <= shifts.occupancy_before);
                            live.push(rule.id);
                        }
                        Err(_) => assert_eq!(table.len(), 64, "only Full may fail"),
                    }
                }
                Op::Delete { idx } => {
                    if !live.is_empty() {
                        let id = live.swap_remove(idx % live.len());
                        assert!(table.delete(id).is_ok());
                    }
                }
                Op::ModifyAction { idx, port } => {
                    if !live.is_empty() {
                        let id = live[idx % live.len()];
                        assert!(table.modify_action(id, Action::Forward(port)).is_ok());
                    }
                }
            }
            assert!(table.check_invariants());
            assert_eq!(table.len(), live.len());
        }
    }

    /// Lookup always returns the highest-priority matching rule (oracle:
    /// linear max scan).
    fn lookup_matches_priority_oracle(
        rules in vec_of(zip3(range(0u32..100), arb::<u32>(), range(8u8..=24)), 1..40),
        probe in arb::<u32>(),
    ) {
        let mut table = TcamTable::new(256, PlacementStrategy::PackedLow);
        let mut all = Vec::new();
        for (i, (prio, bits, len)) in rules.iter().enumerate() {
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            all.push(r);
        }
        let pkt = (probe as u128) << 96;
        let got = table.peek(pkt).map(|r| r.priority);
        let want = all.iter().filter(|r| r.key.matches(pkt)).map(|r| r.priority).max();
        assert_eq!(got, want);
    }

    /// The empirical latency model is monotone in occupancy and shifts for
    /// every switch, and worst-case sizing really bounds the worst case.
    fn latency_model_laws(occ in range(0usize..2000), shifts in range(0usize..2000)) {
        for m in SwitchModel::paper_models() {
            let occ = occ.min(m.capacity - 1);
            let shifts = shifts.min(occ);
            let lat = m.insert_latency(occ, shifts);
            assert!(lat >= m.base);
            assert!(lat <= m.insert_latency(occ, occ) + SimDuration::from_nanos(1));
            // Guarantee sizing: any table within the sized bound meets it.
            let g = SimDuration::from_ms(5.0);
            if let Some(size) = m.max_table_for_guarantee(g) {
                if size > 0 {
                    assert!(m.worst_insert_latency(size) <= g);
                }
            }
        }
    }

    /// `apply_batch` is observationally equivalent to the same ops applied
    /// singly — identical final entries (including FIFO order among equal
    /// priorities) — and the coalesced plan never bills more shifts than
    /// the per-op sum. Exercised across all strategies and both dense and
    /// gap-aware (slack) layouts.
    fn batch_equals_sequential(
        init in vec_of(zip3(range(0u32..500), arb::<u32>(), range(8u8..=28)), 0..40),
        ops in vec_of(batch_op(), 1..60),
        placement in strategy(),
        slack in range(0usize..4),
    ) {
        const CAP: usize = 128;
        let mut table = TcamTable::new(CAP, placement);
        table.set_slack(slack);
        let mut live: Vec<u64> = Vec::new();
        for (i, (prio, bits, len)) in init.iter().enumerate() {
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            live.push(i as u64);
        }
        if slack > 0 {
            table.rebuild_layout();
        }
        // Resolve the abstract ops into a concretely valid batch.
        let mut next = 10_000u64;
        let mut occ = table.len();
        let mut concrete: Vec<TcamOp> = Vec::new();
        for o in ops {
            match o {
                BOp::Insert { prio, pfx_bits, len } if occ < CAP => {
                    concrete.push(TcamOp::Insert(Rule::new(
                        next,
                        Ipv4Prefix::new(pfx_bits, len).to_key(),
                        Priority(prio),
                        Action::Forward(7),
                    )));
                    live.push(next);
                    next += 1;
                    occ += 1;
                }
                BOp::Delete { idx } if !live.is_empty() => {
                    let id = live.swap_remove(idx % live.len());
                    concrete.push(TcamOp::Delete(RuleId(id)));
                    occ -= 1;
                }
                BOp::ModifyAction { idx, port } if !live.is_empty() => {
                    concrete.push(TcamOp::ModifyAction {
                        id: RuleId(live[idx % live.len()]),
                        action: Action::Forward(port),
                    });
                }
                BOp::ModifyKey { idx, pfx_bits, len } if !live.is_empty() => {
                    concrete.push(TcamOp::ModifyKey {
                        id: RuleId(live[idx % live.len()]),
                        key: Ipv4Prefix::new(pfx_bits, len).to_key(),
                    });
                }
                _ => {} // op not applicable in this state; skip
            }
        }
        // Sequential reference: same ops, one at a time.
        let mut seq = table.clone();
        let mut per_op_shifts = 0usize;
        for op in &concrete {
            match op {
                TcamOp::Insert(r) => {
                    per_op_shifts += seq.insert(*r).expect("valid by construction").shifts;
                }
                TcamOp::Delete(id) => {
                    seq.delete(*id).expect("valid by construction");
                }
                TcamOp::ModifyAction { id, action } => {
                    seq.modify_action(*id, *action).expect("valid by construction");
                }
                TcamOp::ModifyKey { id, key } => {
                    seq.modify_key(*id, *key).expect("valid by construction");
                }
            }
        }
        let rep = table.apply_batch(&concrete).expect("valid by construction");
        assert_eq!(table.entries(), seq.entries(), "final tables diverge");
        assert_eq!(table.len(), seq.len());
        assert!(
            rep.shifts <= per_op_shifts,
            "batch billed {} > per-op sum {}",
            rep.shifts,
            per_op_shifts
        );
        assert!(table.check_invariants());
    }

    /// `apply_batch` over *unvalidated* mixed op sequences — duplicate
    /// ids, deletes/modifies of dead rules, capacity overruns — agrees
    /// with sequential semantics on both sides of the validity line: a
    /// batch that would fail sequentially is rejected with exactly the
    /// first sequential error and the table untouched; a batch that
    /// would succeed matches the sequential outcome.
    fn batch_rejection_is_atomic_and_matches_sequential(
        init_n in range(0usize..14),
        ops in vec_of(raw_op(), 1..40),
        placement in strategy(),
        slack in range(0usize..3),
    ) {
        const CAP: usize = 16;
        let mut table = TcamTable::new(CAP, placement);
        table.set_slack(slack);
        for i in 0..init_n as u64 {
            table
                .insert(Rule::new(
                    i,
                    Ipv4Prefix::new(i as u32 * 7919, 24).to_key(),
                    Priority(i as u32 + 1),
                    Action::Forward(i as u32),
                ))
                .expect("capacity");
        }
        if slack > 0 {
            table.rebuild_layout();
        }
        let concrete: Vec<TcamOp> = ops
            .iter()
            .map(|o| match *o {
                RawOp::Insert { id, prio, pfx_bits, len } => TcamOp::Insert(Rule::new(
                    id,
                    Ipv4Prefix::new(pfx_bits, len).to_key(),
                    Priority(prio),
                    Action::Forward(9),
                )),
                RawOp::Delete { id } => TcamOp::Delete(RuleId(id)),
                RawOp::ModifyAction { id, port } => TcamOp::ModifyAction {
                    id: RuleId(id),
                    action: Action::Forward(port),
                },
                RawOp::ModifyKey { id, pfx_bits, len } => TcamOp::ModifyKey {
                    id: RuleId(id),
                    key: Ipv4Prefix::new(pfx_bits, len).to_key(),
                },
            })
            .collect();
        // Sequential reference: apply singly, first error wins.
        let mut seq = table.clone();
        let mut first_err = None;
        for op in &concrete {
            let r = match op {
                TcamOp::Insert(r) => seq.insert(*r).map(|_| ()),
                TcamOp::Delete(id) => seq.delete(*id).map(|_| ()),
                TcamOp::ModifyAction { id, action } => seq.modify_action(*id, *action),
                TcamOp::ModifyKey { id, key } => seq.modify_key(*id, *key),
            };
            if let Err(e) = r {
                first_err = Some(e);
                break;
            }
        }
        let before = table.entries();
        match (table.apply_batch(&concrete), first_err) {
            (Ok(_), None) => {
                assert_eq!(table.entries(), seq.entries(), "valid batch diverges from sequential");
            }
            (Err(got), Some(want)) => {
                assert_eq!(got, want, "batch error differs from first sequential error");
                assert_eq!(
                    table.entries(),
                    before,
                    "rejected batch must leave the table untouched"
                );
            }
            (got, want) => panic!(
                "batch validity disagrees with sequential: batch={got:?} sequential={want:?}"
            ),
        }
        assert!(table.check_invariants());
    }

    /// Delete+reinsert is an identity for lookups (modulo FIFO ties).
    fn delete_reinsert_identity(
        rules in vec_of(zip3(range(1u32..1000), arb::<u32>(), range(8u8..=24)), 2..30),
        victim in arb::<usize>(),
        probes in vec_of(arb::<u32>(), 20..21),
    ) {
        // Unique priorities so FIFO order can't matter.
        let mut table = TcamTable::new(256, PlacementStrategy::Balanced);
        let mut seen = std::collections::HashSet::new();
        let mut all = Vec::new();
        for (i, (prio, bits, len)) in rules.iter().enumerate() {
            if !seen.insert(*prio) {
                continue;
            }
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            all.push(r);
        }
        if all.is_empty() {
            return;
        }
        let v = all[victim % all.len()];
        let before: Vec<_> = probes.iter().map(|&p| table.peek((p as u128) << 96)).collect();
        table.delete(v.id).expect("live");
        table.insert(v).expect("room");
        let after: Vec<_> = probes.iter().map(|&p| table.peek((p as u128) << 96)).collect();
        assert_eq!(before, after);
    }
}

/// Regression (promoted from a scratch repro): priority-free inserts land
/// without shifts, but they still occupy physical slots. Once a slack
/// relayout reserves every remaining free slot as a gap, each further
/// `Priority::NONE` insert must consume a gap — the old code skipped gap
/// accounting on the free-placement path, let `len + gaps` overrun the
/// capacity, and the next prioritized insert underflowed `unreserved()`.
#[test]
fn none_priority_overfill_consumes_reserved_gaps() {
    let rule = |id: u64, p: Priority| {
        Rule::new(
            id,
            "10.0.0.0/8".parse::<Ipv4Prefix>().expect("static prefix").to_key(),
            p,
            Action::Drop,
        )
    };
    let mut t = TcamTable::new(300, PlacementStrategy::PackedLow);
    for i in 0..200u64 {
        t.insert(rule(i, Priority(10_000 - i as u32))).expect("capacity");
    }
    t.set_slack(2);
    t.rebuild_layout();
    assert!(t.gap_slots() > 0, "slack relayout must reserve gaps");
    // Exhaust the trailing unreserved space with low-priority inserts, so
    // all remaining free slots are reserved gaps.
    let mut id = 1000u64;
    while t.len() + t.gap_slots() < t.capacity() {
        t.insert(rule(id, Priority(1))).expect("capacity");
        id += 1;
    }
    // Fill to capacity with priority-free rules: each one now consumes a
    // reserved gap and the layout invariant holds at every step.
    while t.len() < t.capacity() {
        t.insert(rule(id, Priority::NONE)).expect("gaps must absorb free-placement inserts");
        id += 1;
        assert!(
            t.len() + t.gap_slots() <= t.capacity(),
            "len {} + gaps {} overran capacity {}",
            t.len(),
            t.gap_slots(),
            t.capacity()
        );
        assert!(t.check_invariants());
    }
    assert_eq!(t.gap_slots(), 0, "filling to capacity consumes every gap");
    // At capacity both insert flavors report Full instead of panicking.
    assert_eq!(t.insert(rule(id, Priority(1))).unwrap_err(), TcamError::Full);
    assert_eq!(t.insert(rule(id, Priority::NONE)).unwrap_err(), TcamError::Full);
}
