//! Property-based tests for the TCAM model: ordering invariants under
//! arbitrary operation sequences, shift-count consistency, and latency
//! model sanity across the whole occupancy range. Runs under the in-tree
//! `hermes_util::check!` harness with pinned default seeds.

use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SimDuration, SwitchModel, TcamOp, TcamTable};
use hermes_util::check::{arb, just, one_of, range, vec_of, weighted, zip2, zip3, Gen};

#[derive(Clone, Debug)]
enum Op {
    Insert { prio: u32, pfx_bits: u32, len: u8 },
    Delete { idx: usize },
    ModifyAction { idx: usize, port: u32 },
}

fn op() -> Gen<Op> {
    weighted(vec![
        (
            3,
            zip3(range(0u32..2000), arb::<u32>(), range(8u8..=30)).map(
                |(prio, pfx_bits, len)| Op::Insert { prio, pfx_bits, len },
            ),
        ),
        (1, arb::<usize>().map(|idx| Op::Delete { idx })),
        (
            1,
            zip2(arb::<usize>(), range(0u32..48))
                .map(|(idx, port)| Op::ModifyAction { idx, port }),
        ),
    ])
}

/// Abstract batch op: indices are resolved against the set of live ids at
/// generation-replay time so every concrete batch is valid (the atomic
/// rejection path has its own unit tests).
#[derive(Clone, Debug)]
enum BOp {
    Insert { prio: u32, pfx_bits: u32, len: u8 },
    Delete { idx: usize },
    ModifyAction { idx: usize, port: u32 },
    ModifyKey { idx: usize, pfx_bits: u32, len: u8 },
}

fn batch_op() -> Gen<BOp> {
    weighted(vec![
        (
            4,
            zip3(range(0u32..2000), arb::<u32>(), range(8u8..=30)).map(
                |(prio, pfx_bits, len)| BOp::Insert { prio, pfx_bits, len },
            ),
        ),
        (2, arb::<usize>().map(|idx| BOp::Delete { idx })),
        (
            1,
            zip2(arb::<usize>(), range(0u32..48))
                .map(|(idx, port)| BOp::ModifyAction { idx, port }),
        ),
        (
            1,
            zip3(arb::<usize>(), arb::<u32>(), range(8u8..=30))
                .map(|(idx, pfx_bits, len)| BOp::ModifyKey { idx, pfx_bits, len }),
        ),
    ])
}

fn strategy() -> Gen<PlacementStrategy> {
    one_of(vec![
        just(PlacementStrategy::PackedLow),
        just(PlacementStrategy::PackedHigh),
        just(PlacementStrategy::Balanced),
    ])
}

hermes_util::check! {
    #![cases = 256]

    /// Invariants hold under any op sequence: priority-sorted entries,
    /// capacity respected, shift counts bounded by occupancy.
    fn table_invariants_under_random_ops(
        ops in vec_of(op(), 1..200),
        placement in strategy(),
    ) {
        let mut table = TcamTable::new(64, placement);
        let mut live: Vec<RuleId> = Vec::new();
        let mut next = 0u64;
        for o in ops {
            match o {
                Op::Insert { prio, pfx_bits, len } => {
                    let rule = Rule::new(
                        next,
                        Ipv4Prefix::new(pfx_bits, len).to_key(),
                        Priority(prio),
                        Action::Forward(1),
                    );
                    next += 1;
                    match table.insert(rule) {
                        Ok(shifts) => {
                            assert!(shifts.shifts <= shifts.occupancy_before);
                            live.push(rule.id);
                        }
                        Err(_) => assert_eq!(table.len(), 64, "only Full may fail"),
                    }
                }
                Op::Delete { idx } => {
                    if !live.is_empty() {
                        let id = live.swap_remove(idx % live.len());
                        assert!(table.delete(id).is_ok());
                    }
                }
                Op::ModifyAction { idx, port } => {
                    if !live.is_empty() {
                        let id = live[idx % live.len()];
                        assert!(table.modify_action(id, Action::Forward(port)).is_ok());
                    }
                }
            }
            assert!(table.check_invariants());
            assert_eq!(table.len(), live.len());
        }
    }

    /// Lookup always returns the highest-priority matching rule (oracle:
    /// linear max scan).
    fn lookup_matches_priority_oracle(
        rules in vec_of(zip3(range(0u32..100), arb::<u32>(), range(8u8..=24)), 1..40),
        probe in arb::<u32>(),
    ) {
        let mut table = TcamTable::new(256, PlacementStrategy::PackedLow);
        let mut all = Vec::new();
        for (i, (prio, bits, len)) in rules.iter().enumerate() {
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            all.push(r);
        }
        let pkt = (probe as u128) << 96;
        let got = table.peek(pkt).map(|r| r.priority);
        let want = all.iter().filter(|r| r.key.matches(pkt)).map(|r| r.priority).max();
        assert_eq!(got, want);
    }

    /// The empirical latency model is monotone in occupancy and shifts for
    /// every switch, and worst-case sizing really bounds the worst case.
    fn latency_model_laws(occ in range(0usize..2000), shifts in range(0usize..2000)) {
        for m in SwitchModel::paper_models() {
            let occ = occ.min(m.capacity - 1);
            let shifts = shifts.min(occ);
            let lat = m.insert_latency(occ, shifts);
            assert!(lat >= m.base);
            assert!(lat <= m.insert_latency(occ, occ) + SimDuration::from_nanos(1));
            // Guarantee sizing: any table within the sized bound meets it.
            let g = SimDuration::from_ms(5.0);
            if let Some(size) = m.max_table_for_guarantee(g) {
                if size > 0 {
                    assert!(m.worst_insert_latency(size) <= g);
                }
            }
        }
    }

    /// `apply_batch` is observationally equivalent to the same ops applied
    /// singly — identical final entries (including FIFO order among equal
    /// priorities) — and the coalesced plan never bills more shifts than
    /// the per-op sum. Exercised across all strategies and both dense and
    /// gap-aware (slack) layouts.
    fn batch_equals_sequential(
        init in vec_of(zip3(range(0u32..500), arb::<u32>(), range(8u8..=28)), 0..40),
        ops in vec_of(batch_op(), 1..60),
        placement in strategy(),
        slack in range(0usize..4),
    ) {
        const CAP: usize = 128;
        let mut table = TcamTable::new(CAP, placement);
        table.set_slack(slack);
        let mut live: Vec<u64> = Vec::new();
        for (i, (prio, bits, len)) in init.iter().enumerate() {
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            live.push(i as u64);
        }
        if slack > 0 {
            table.rebuild_layout();
        }
        // Resolve the abstract ops into a concretely valid batch.
        let mut next = 10_000u64;
        let mut occ = table.len();
        let mut concrete: Vec<TcamOp> = Vec::new();
        for o in ops {
            match o {
                BOp::Insert { prio, pfx_bits, len } if occ < CAP => {
                    concrete.push(TcamOp::Insert(Rule::new(
                        next,
                        Ipv4Prefix::new(pfx_bits, len).to_key(),
                        Priority(prio),
                        Action::Forward(7),
                    )));
                    live.push(next);
                    next += 1;
                    occ += 1;
                }
                BOp::Delete { idx } if !live.is_empty() => {
                    let id = live.swap_remove(idx % live.len());
                    concrete.push(TcamOp::Delete(RuleId(id)));
                    occ -= 1;
                }
                BOp::ModifyAction { idx, port } if !live.is_empty() => {
                    concrete.push(TcamOp::ModifyAction {
                        id: RuleId(live[idx % live.len()]),
                        action: Action::Forward(port),
                    });
                }
                BOp::ModifyKey { idx, pfx_bits, len } if !live.is_empty() => {
                    concrete.push(TcamOp::ModifyKey {
                        id: RuleId(live[idx % live.len()]),
                        key: Ipv4Prefix::new(pfx_bits, len).to_key(),
                    });
                }
                _ => {} // op not applicable in this state; skip
            }
        }
        // Sequential reference: same ops, one at a time.
        let mut seq = table.clone();
        let mut per_op_shifts = 0usize;
        for op in &concrete {
            match op {
                TcamOp::Insert(r) => {
                    per_op_shifts += seq.insert(*r).expect("valid by construction").shifts;
                }
                TcamOp::Delete(id) => {
                    seq.delete(*id).expect("valid by construction");
                }
                TcamOp::ModifyAction { id, action } => {
                    seq.modify_action(*id, *action).expect("valid by construction");
                }
                TcamOp::ModifyKey { id, key } => {
                    seq.modify_key(*id, *key).expect("valid by construction");
                }
            }
        }
        let rep = table.apply_batch(&concrete).expect("valid by construction");
        assert_eq!(table.entries(), seq.entries(), "final tables diverge");
        assert_eq!(table.len(), seq.len());
        assert!(
            rep.shifts <= per_op_shifts,
            "batch billed {} > per-op sum {}",
            rep.shifts,
            per_op_shifts
        );
        assert!(table.check_invariants());
    }

    /// Delete+reinsert is an identity for lookups (modulo FIFO ties).
    fn delete_reinsert_identity(
        rules in vec_of(zip3(range(1u32..1000), arb::<u32>(), range(8u8..=24)), 2..30),
        victim in arb::<usize>(),
        probes in vec_of(arb::<u32>(), 20..21),
    ) {
        // Unique priorities so FIFO order can't matter.
        let mut table = TcamTable::new(256, PlacementStrategy::Balanced);
        let mut seen = std::collections::HashSet::new();
        let mut all = Vec::new();
        for (i, (prio, bits, len)) in rules.iter().enumerate() {
            if !seen.insert(*prio) {
                continue;
            }
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            all.push(r);
        }
        if all.is_empty() {
            return;
        }
        let v = all[victim % all.len()];
        let before: Vec<_> = probes.iter().map(|&p| table.peek((p as u128) << 96)).collect();
        table.delete(v.id).expect("live");
        table.insert(v).expect("room");
        let after: Vec<_> = probes.iter().map(|&p| table.peek((p as u128) << 96)).collect();
        assert_eq!(before, after);
    }
}
