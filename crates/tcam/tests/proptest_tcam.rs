//! Property-based tests for the TCAM model: ordering invariants under
//! arbitrary operation sequences, shift-count consistency, and latency
//! model sanity across the whole occupancy range.

use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SimDuration, SwitchModel, TcamTable};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    Insert { prio: u32, pfx_bits: u32, len: u8 },
    Delete { idx: usize },
    ModifyAction { idx: usize, port: u32 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..2000, any::<u32>(), 8u8..=30).prop_map(|(prio, pfx_bits, len)| Op::Insert {
            prio,
            pfx_bits,
            len
        }),
        1 => (any::<usize>()).prop_map(|idx| Op::Delete { idx }),
        1 => (any::<usize>(), 0u32..48).prop_map(|(idx, port)| Op::ModifyAction { idx, port }),
    ]
}

fn strategy() -> impl Strategy<Value = PlacementStrategy> {
    prop_oneof![
        Just(PlacementStrategy::PackedLow),
        Just(PlacementStrategy::PackedHigh),
        Just(PlacementStrategy::Balanced),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Invariants hold under any op sequence: priority-sorted entries,
    /// capacity respected, shift counts bounded by occupancy.
    #[test]
    fn table_invariants_under_random_ops(
        ops in prop::collection::vec(op(), 1..200),
        placement in strategy(),
    ) {
        let mut table = TcamTable::new(64, placement);
        let mut live: Vec<RuleId> = Vec::new();
        let mut next = 0u64;
        for o in ops {
            match o {
                Op::Insert { prio, pfx_bits, len } => {
                    let rule = Rule::new(
                        next,
                        Ipv4Prefix::new(pfx_bits, len).to_key(),
                        Priority(prio),
                        Action::Forward(1),
                    );
                    next += 1;
                    match table.insert(rule) {
                        Ok(shifts) => {
                            prop_assert!(shifts.shifts <= shifts.occupancy_before);
                            live.push(rule.id);
                        }
                        Err(_) => prop_assert_eq!(table.len(), 64, "only Full may fail"),
                    }
                }
                Op::Delete { idx } => {
                    if !live.is_empty() {
                        let id = live.swap_remove(idx % live.len());
                        prop_assert!(table.delete(id).is_ok());
                    }
                }
                Op::ModifyAction { idx, port } => {
                    if !live.is_empty() {
                        let id = live[idx % live.len()];
                        prop_assert!(table.modify_action(id, Action::Forward(port)).is_ok());
                    }
                }
            }
            prop_assert!(table.check_invariants());
            prop_assert_eq!(table.len(), live.len());
        }
    }

    /// Lookup always returns the highest-priority matching rule (oracle:
    /// linear max scan).
    #[test]
    fn lookup_matches_priority_oracle(
        rules in prop::collection::vec((0u32..100, any::<u32>(), 8u8..=24), 1..40),
        probe in any::<u32>(),
    ) {
        let mut table = TcamTable::new(256, PlacementStrategy::PackedLow);
        let mut all = Vec::new();
        for (i, (prio, bits, len)) in rules.iter().enumerate() {
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            all.push(r);
        }
        let pkt = (probe as u128) << 96;
        let got = table.peek(pkt).map(|r| r.priority);
        let want = all.iter().filter(|r| r.key.matches(pkt)).map(|r| r.priority).max();
        prop_assert_eq!(got, want);
    }

    /// The empirical latency model is monotone in occupancy and shifts for
    /// every switch, and worst-case sizing really bounds the worst case.
    #[test]
    fn latency_model_laws(occ in 0usize..2000, shifts in 0usize..2000) {
        for m in SwitchModel::paper_models() {
            let occ = occ.min(m.capacity - 1);
            let shifts = shifts.min(occ);
            let lat = m.insert_latency(occ, shifts);
            prop_assert!(lat >= m.base);
            prop_assert!(lat <= m.insert_latency(occ, occ) + SimDuration::from_nanos(1));
            // Guarantee sizing: any table within the sized bound meets it.
            let g = SimDuration::from_ms(5.0);
            if let Some(size) = m.max_table_for_guarantee(g) {
                if size > 0 {
                    prop_assert!(m.worst_insert_latency(size) <= g);
                }
            }
        }
    }

    /// Delete+reinsert is an identity for lookups (modulo FIFO ties).
    #[test]
    fn delete_reinsert_identity(
        rules in prop::collection::vec((1u32..1000, any::<u32>(), 8u8..=24), 2..30,),
        victim in any::<usize>(),
        probes in prop::collection::vec(any::<u32>(), 20),
    ) {
        // Unique priorities so FIFO order can't matter.
        let mut table = TcamTable::new(256, PlacementStrategy::Balanced);
        let mut seen = std::collections::HashSet::new();
        let mut all = Vec::new();
        for (i, (prio, bits, len)) in rules.iter().enumerate() {
            if !seen.insert(*prio) {
                continue;
            }
            let r = Rule::new(
                i as u64,
                Ipv4Prefix::new(*bits, *len).to_key(),
                Priority(*prio),
                Action::Forward(i as u32),
            );
            table.insert(r).expect("capacity");
            all.push(r);
        }
        prop_assume!(!all.is_empty());
        let v = all[victim % all.len()];
        let before: Vec<_> = probes.iter().map(|&p| table.peek((p as u128) << 96)).collect();
        table.delete(v.id).expect("live");
        table.insert(v).expect("room");
        let after: Vec<_> = probes.iter().map(|&p| table.peek((p as u128) << 96)).collect();
        prop_assert_eq!(before, after);
    }
}
