use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, TcamTable};

fn rule(id: u64, p: Priority) -> Rule {
    Rule::new(id, "10.0.0.0/8".parse::<Ipv4Prefix>().unwrap().to_key(), p, Action::Drop)
}

#[test]
fn slack_plus_none_priority_overfill() {
    let mut t = TcamTable::new(300, PlacementStrategy::PackedLow);
    // 200 prioritized rules, then a slack relayout: blocks of 64, 2 gaps each.
    for i in 0..200u64 {
        t.insert(rule(i, Priority(10_000 - i as u32))).unwrap();
    }
    t.set_slack(2);
    t.rebuild_layout();
    let gaps0 = t.gap_slots();
    eprintln!("after rebuild: len={} gaps={}", t.len(), gaps0);
    // Exhaust the gaps in the LAST block with low-priority inserts.
    let mut id = 1000u64;
    for _ in 0..2 {
        t.insert(rule(id, Priority(1))).unwrap();
        id += 1;
    }
    eprintln!("after tail inserts: gaps={}", t.gap_slots());
    // Fill with NONE-priority rules (never consume gaps) until
    // len + gap_slots > capacity.
    while t.len() + t.gap_slots() <= t.capacity() {
        t.insert(rule(id, Priority::NONE)).unwrap();
        id += 1;
    }
    eprintln!("overfilled: len={} gaps={} cap={}", t.len(), t.gap_slots(), t.capacity());
    eprintln!("invariants hold: {}", t.check_invariants());
    // A low-priority prioritized insert now reaches unreserved() with
    // gaps only in earlier blocks.
    let r = t.insert(rule(id, Priority(1)));
    eprintln!("final insert: {:?}", r.map(|s| s.shifts));
}
