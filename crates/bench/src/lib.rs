//! # hermes-bench — the experiment harness
//!
//! Shared machinery for the `exp_*` binaries that regenerate every table
//! and figure of the paper's evaluation (see DESIGN.md §4 for the index
//! and EXPERIMENTS.md for paper-vs-measured results).
//!
//! The binaries print the same rows/series the paper reports; absolute
//! numbers depend on the empirical switch models, but the comparisons
//! (who wins, by what factor, where crossovers fall) are the reproduction
//! targets.
//!
//! Scale knobs: every binary loads a [`Scenario`] (see [`scenario`]) — a
//! named entry of `scenarios/matrix.toml` when `HERMES_SCENARIO_FILE` /
//! `HERMES_SCENARIO` are set (the harness does this), or a synthetic
//! `adhoc` scenario otherwise. `HERMES_SCALE` (default `1`) multiplies
//! workload sizes either way, so the full paper-scale runs are available
//! without recompiling.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, CpQueue};
use hermes_netsim::metrics::Samples;
use hermes_tcam::{SimDuration, SimTime};
use hermes_util::scenario::Scenario;
use hermes_workloads::microbench::TimedAction;

/// Result of driving a timed action stream through one control plane.
#[derive(Debug, Default)]
pub struct StreamResult {
    /// Rule installation times (arrival → completion, queueing included), ms.
    pub rit_ms: Samples,
    /// Pure per-rule execution latencies (no queueing), ms — the quantity
    /// the paper's per-rule RIT figures plot.
    pub exec_ms: Samples,
    /// Guarantee violations reported by the plane.
    pub violations: u64,
    /// Actions driven.
    pub actions: u64,
    /// Final table occupancy.
    pub occupancy: usize,
    /// Migration passes performed (Hermes planes only).
    pub migrations: u64,
}

impl StreamResult {
    /// Violations as a percentage of actions.
    pub fn violation_pct(&self) -> f64 {
        if self.actions == 0 {
            0.0
        } else {
            100.0 * self.violations as f64 / self.actions as f64
        }
    }
}

/// Drives a timed action stream through a control plane with serial
/// control-channel queueing, ticking the plane's background manager every
/// `tick`. RIT = completion − arrival (queueing included), exactly the
/// metric of §8.1.2.
pub fn drive_stream<P: ControlPlane>(
    plane: P,
    actions: &[TimedAction],
    tick: SimDuration,
) -> StreamResult {
    let mut q = CpQueue::new(plane);
    let mut result = StreamResult::default();
    let mut next_tick = SimTime::ZERO + tick;
    for ta in actions {
        // Catch up on manager ticks before this arrival.
        while next_tick <= ta.at {
            q.plane_mut().tick(next_tick);
            next_tick += tick;
        }
        let (start, outcome) = q.submit(std::slice::from_ref(&ta.action), ta.at);
        let op = outcome.ops.last().expect("INVARIANT: submit of one action reports at least one op");
        result
            .rit_ms
            .push((start + op.completed_at).since(ta.at).as_ms());
        result.exec_ms.push(op.exec.as_ms());
        if op.violated {
            result.violations += 1;
        }
        result.actions += 1;
    }
    result.occupancy = q.plane().occupancy();
    result.migrations = q.plane().migrations();
    result
}

/// Generates a traffic-engineering-style workload for the Fig. 10/11
/// comparisons, as *batches*: each batch is one reconfiguration event (the
/// set of FlowMods an SDN app pushes at once — the unit Tango and ESPRES
/// optimize over).
///
/// * `dc_structured = true` (the Facebook side): each batch holds sibling
///   destination prefixes sharing one action and priority — the
///   data-center IP-allocation structure Tango's aggregation exploits;
/// * `dc_structured = false` (the Geant side): scattered ISP prefixes with
///   varied priorities and actions — little to aggregate.
pub fn te_batches(
    dc_structured: bool,
    total_rules: usize,
    batches_per_s: f64,
    seed: u64,
) -> Vec<(SimTime, Vec<hermes_rules::rule::ControlAction>)> {
    use hermes_rules::prelude::*;
    use hermes_util::rng::rngs::StdRng;
    use hermes_util::rng::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(SimTime, Vec<ControlAction>)> = Vec::new();
    let mut now_s = 0.0f64;
    let mut id = 0u64;
    let mut emitted = 0usize;
    // Rules still installed from earlier reconfigurations, eligible for
    // teardown when their flows move again.
    let mut teardown_pool: Vec<RuleId> = Vec::new();
    while emitted < total_rules {
        let u: f64 = rng.gen_range(1e-12..1.0);
        now_s += -u.ln() / batches_per_s;
        let size = rng.gen_range(8..=32usize).min(total_rules - emitted);
        let mut inserts = Vec::with_capacity(size);
        if dc_structured {
            // A reconfiguration in a structured data-center network:
            // roughly half the rules are sibling prefixes sharing an action
            // and priority (one rack's flows moving together — Tango can
            // aggregate these); the rest are per-flow exact matches.
            let block = ((0b10u32 << 30) | (rng.gen_range(0..1u32 << 12) << 11)) & !0x7ff;
            let action = Action::Forward(rng.gen_range(1..48));
            let prio = Priority(rng.gen_range(100..200));
            for b in 0..size {
                if b % 2 == 0 {
                    let addr = block | ((b as u32) << 6);
                    inserts.push(Rule::new(
                        id,
                        Ipv4Prefix::new(addr, 26).to_key(),
                        prio,
                        action,
                    ));
                } else {
                    let m = FlowMatch::any()
                        .with_dst(Ipv4Prefix::host(rng.gen()))
                        .with_src(Ipv4Prefix::host(rng.gen()));
                    inserts.push(Rule::new(
                        id,
                        m.to_key(),
                        Priority(rng.gen_range(100..200)),
                        Action::Forward(rng.gen_range(1..48)),
                    ));
                }
                id += 1;
            }
        } else {
            // ISP reconfiguration: scattered prefixes, varied priorities
            // and actions — little to aggregate.
            for _ in 0..size {
                let len = rng.gen_range(16..=24);
                let addr = rng.gen::<u32>() | (1 << 31);
                inserts.push(Rule::new(
                    id,
                    Ipv4Prefix::new(addr, len).to_key(),
                    Priority(rng.gen_range(1..1000)),
                    Action::Forward(rng.gen_range(1..16)),
                ));
                id += 1;
            }
        }
        emitted += size;
        // Each reconfiguration also tears down rules from earlier ones
        // (flows leaving their old paths): about half as many deletes as
        // inserts, so the table still grows over the run. Submission order
        // interleaves deletes among the inserts — the naive order a raw
        // switch executes; ESPRES/Tango reorder deletes first.
        let n_del = (size / 2).min(teardown_pool.len());
        let mut batch: Vec<ControlAction> = Vec::with_capacity(size + n_del);
        let mut deletes: Vec<ControlAction> = (0..n_del)
            .map(|_| {
                let i = rng.gen_range(0..teardown_pool.len());
                ControlAction::Delete(teardown_pool.swap_remove(i))
            })
            .collect();
        for rule in &inserts {
            teardown_pool.push(rule.id);
        }
        for (i, rule) in inserts.into_iter().enumerate() {
            batch.push(ControlAction::Insert(rule));
            if i % 2 == 1 {
                if let Some(d) = deletes.pop() {
                    batch.push(d);
                }
            }
        }
        batch.extend(deletes);
        out.push((SimTime::from_secs(now_s), batch));
    }
    out
}

/// Drives batched reconfigurations through a control plane with serial
/// control-channel queueing. The per-rule RIT is
/// `queueing delay + completion offset within the batch`.
pub fn drive_batches<P: ControlPlane>(
    plane: P,
    batches: &[(SimTime, Vec<hermes_rules::rule::ControlAction>)],
    tick: SimDuration,
) -> StreamResult {
    let mut q = CpQueue::new(plane);
    let mut result = StreamResult::default();
    let mut next_tick = SimTime::ZERO + tick;
    for (at, actions) in batches {
        while next_tick <= *at {
            q.plane_mut().tick(next_tick);
            next_tick += tick;
        }
        let (start, outcome) = q.submit(actions, *at);
        // Only insertions count as RIT samples (§8.1.2 defines RIT over
        // rule installations; the teardown deletes are cheap bookkeeping).
        let insert_ids: std::collections::BTreeSet<_> = actions
            .iter()
            .filter(|a| a.is_insert())
            .map(|a| a.rule_id())
            .collect();
        for op in &outcome.ops {
            if !insert_ids.contains(&op.id) {
                continue;
            }
            result
                .rit_ms
                .push((start + op.completed_at).since(*at).as_ms());
            result.exec_ms.push(op.exec.as_ms());
            if op.violated {
                result.violations += 1;
            }
            result.actions += 1;
        }
    }
    result.occupancy = q.plane().occupancy();
    result.migrations = q.plane().migrations();
    result
}

/// Loads this process's scenario configuration from the environment.
///
/// `HERMES_SCENARIO_FILE` + `HERMES_SCENARIO` select one entry of the
/// shared scenario matrix (`hermes_util::scenario`; the harness sets
/// both). Without them a synthetic `adhoc` scenario is built, so plain
/// `./exp_*` invocations behave exactly as before. In both cases the bare
/// environment variables (`HERMES_SCALE`, `HERMES_FAULT_SEED`,
/// `HERMES_TRACE`) override the file: that is how the harness varies
/// per-repetition fault seeds without editing the matrix, and how
/// operators tweak one-off runs.
fn load_scenario_from_env() -> Result<Scenario, String> {
    let file = std::env::var("HERMES_SCENARIO_FILE").ok();
    let name = std::env::var("HERMES_SCENARIO").ok();
    let mut sc = match (&file, &name) {
        (Some(f), Some(n)) => {
            let matrix =
                hermes_util::scenario::Matrix::load(std::path::Path::new(f)).map_err(|e| e.to_string())?;
            matrix
                .get(n)
                .cloned()
                .ok_or_else(|| format!("scenario {n:?} not found in {f}"))?
        }
        (Some(f), None) => {
            return Err(format!(
                "HERMES_SCENARIO_FILE={f} is set but HERMES_SCENARIO names no scenario"
            ))
        }
        (None, _) => {
            let mut sc = Scenario::with_defaults("adhoc");
            // Ad-hoc runs arm telemetry from the environment only.
            sc.trace = false;
            sc
        }
    };
    if let Ok(v) = std::env::var("HERMES_SCALE") {
        sc.scale = v
            .parse()
            .ok()
            .filter(|&s| s > 0)
            .ok_or_else(|| format!("HERMES_SCALE={v} is not a positive integer"))?;
    }
    if let Ok(v) = std::env::var("HERMES_FAULT_SEED") {
        sc.fault_seed = Some(
            v.parse()
                .map_err(|_| format!("HERMES_FAULT_SEED={v} is not an integer"))?,
        );
    }
    if let Ok(v) = std::env::var("HERMES_TRACE") {
        // Same convention as hermes_telemetry::init_from_env.
        sc.trace = !(v.is_empty() || v == "0");
    }
    Ok(sc)
}

fn scenario_cached() -> &'static Result<Scenario, String> {
    static SCENARIO: std::sync::OnceLock<Result<Scenario, String>> = std::sync::OnceLock::new();
    SCENARIO.get_or_init(load_scenario_from_env)
}

/// The scenario this process runs under — the one loader every `exp_*`
/// binary shares (DESIGN.md §11). Workload knobs come from
/// [`Scenario::knob_u64`] and friends with the binary's historical
/// defaults, so the named matrix entries and bare runs agree by
/// construction.
pub fn scenario() -> &'static Scenario {
    match scenario_cached() {
        Ok(sc) => sc,
        // INVARIANT: run_experiment validates the scenario before any
        // body (and therefore any scenario() call) runs; R6 pins every
        // exp_* binary to run_experiment.
        Err(e) => panic!("{e}"),
    }
}

/// The workload multiplier (`HERMES_SCALE` / the scenario's `scale`).
pub fn scale() -> usize {
    scenario().scale as usize
}

/// Prints a CDF as aligned `value fraction` rows under a header, matching
/// the series the paper plots.
pub fn print_cdf(title: &str, samples: &mut Samples, points: usize) {
    println!("# CDF: {title}  (n={})", samples.len());
    for (v, f) in samples.cdf(points) {
        println!("{v:>12.3} {f:>6.3}");
    }
}

/// Prints the standard summary row used across experiments.
pub fn print_summary(label: &str, samples: &mut Samples) {
    if samples.is_empty() {
        println!("{label:<28} (no samples)");
        return;
    }
    println!(
        "{label:<28} n={:<7} median={:>10.3} p95={:>10.3} p99={:>10.3} max={:>10.3} mean={:>10.3}",
        samples.len(),
        samples.median(),
        samples.percentile(0.95),
        samples.percentile(0.99),
        samples.max(),
        samples.mean()
    );
}

/// A simple fixed-width table printer for the paper's tables.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let parts: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
                .collect();
            println!("| {} |", parts.join(" | "));
        };
        line(&self.header);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hermes_baselines::RawSwitch;
    use hermes_tcam::SwitchModel;
    use hermes_workloads::microbench::MicroBench;

    #[test]
    fn drive_stream_records_every_action() {
        let cfg = MicroBench {
            count: 100,
            ..Default::default()
        };
        let stream = cfg.generate();
        let result = drive_stream(
            RawSwitch::new(SwitchModel::pica8_p3290()),
            &stream,
            SimDuration::from_ms(100.0),
        );
        assert_eq!(result.actions, 100);
        assert_eq!(result.rit_ms.len(), 100);
        assert_eq!(result.violations, 0);
        assert_eq!(result.occupancy, 100);
    }

    #[test]
    fn queueing_shows_up_under_bursts() {
        // At 100k inserts/s a raw switch cannot keep up: tail RIT must
        // blow far past the mean per-op latency.
        let cfg = MicroBench {
            arrival_rate: 100_000.0,
            count: 1500,
            ..Default::default()
        };
        let stream = cfg.generate();
        let mut result = drive_stream(
            RawSwitch::new(SwitchModel::dell_8132f()),
            &stream,
            SimDuration::from_ms(100.0),
        );
        let p99 = result.rit_ms.percentile(0.99);
        let p10 = result.rit_ms.percentile(0.10);
        assert!(p99 > 10.0 * p10.max(0.1), "p99 {p99} vs p10 {p10}");
    }

    #[test]
    fn table_renders() {
        let mut t = Table::new(&["a", "bb"]);
        t.row(&["1".into(), "2".into()]);
        t.print();
    }

    #[test]
    fn scale_defaults_to_one() {
        assert!(scale() >= 1);
    }

    #[test]
    fn out_flag_parsing() {
        let p = |v: &[&str]| out_path_from_args(v.iter().map(|s| s.to_string()));
        assert_eq!(p(&[]), None);
        assert_eq!(p(&["--out", "x.json"]), Some("x.json".into()));
        assert_eq!(p(&["--out=y.json"]), Some("y.json".into()));
        // Later occurrences win; unrelated flags pass through untouched.
        assert_eq!(p(&["--foo", "--out", "a", "--out=b"]), Some("b".into()));
        assert_eq!(p(&["--out"]), None, "dangling flag is ignored");
    }
}

/// Standard Varys run over the Facebook workload on a fat tree.
///
/// `k=8` (128 hosts) by default; pass `HERMES_SCALE=4` or more to grow the
/// job count (the topology stays fixed so runs at different scales remain
/// comparable). Returns the finished simulator.
pub fn run_varys_facebook(
    kind: hermes_netsim::sim::SwitchKind,
    jobs: usize,
    seed: u64,
) -> hermes_netsim::sim::Varys {
    use hermes_netsim::prelude::*;
    use hermes_workloads::facebook::FacebookWorkload;
    let topo = Topology::fat_tree(8, 10e9);
    let hosts = topo.hosts().len();
    let config = VarysConfig {
        switch: kind,
        congestion_threshold: 0.5,
        base_rules_per_switch: 400,
        // The paper's proactive TE reconfigures the whole network every
        // period; no artificial cap.
        max_reroutes_per_tick: 10_000,
        te_interval_s: 0.5,
        seed,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let workload = FacebookWorkload {
        jobs,
        hosts,
        duration_s: jobs as f64 * 0.15,
        seed: 99,
    };
    sim.register_jobs(&workload.generate());
    sim.run(workload.duration_s * 20.0 + 600.0);
    sim
}

/// Standard Varys run over the Geant workload (gravity traffic matrix,
/// Poisson flows).
pub fn run_varys_geant(
    kind: hermes_netsim::sim::SwitchKind,
    duration_s: f64,
    seed: u64,
) -> hermes_netsim::sim::Varys {
    use hermes_netsim::prelude::*;
    use hermes_workloads::gravity::{flows_from_matrix, TrafficMatrix};
    let topo = Topology::geant();
    let nodes = topo.hosts().len();
    let config = VarysConfig {
        switch: kind,
        congestion_threshold: 0.5,
        base_rules_per_switch: 400,
        max_reroutes_per_tick: 10_000,
        te_interval_s: 0.5,
        seed,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    // Offered load sized to congest the 10 Gbps backbone's hot links.
    let tm = TrafficMatrix::gravity(nodes, 4e9, 5);
    let flows = flows_from_matrix(&tm, duration_s, 200e6, 6);
    sim.register_flows(&flows, 0);
    sim.run(duration_s * 20.0 + 600.0);
    sim
}

/// Runs `body`, converting any panic into a one-line error string instead
/// of a backtrace (the default panic hook is silenced for the duration).
///
/// Top-level handler for operator-facing binaries: a fault-injected or
/// misconfigured run must exit with a diagnosable message, not a crash
/// dump. `AssertUnwindSafe` is sound here because the state the closure
/// touched is discarded on the error path.
pub fn catch_panic<T>(body: impl FnOnce() -> T) -> Result<T, String> {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
    std::panic::set_hook(prev);
    result.map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "unexpected panic".to_string()
        }
    })
}

/// Wraps an experiment body for a binary's `main`: success exits 0, any
/// panic prints `<name>: error: <message>` on stderr and exits nonzero.
///
/// This is also the telemetry entry point for every `exp_*` binary and the
/// CLI (DESIGN.md "Observability"): it arms `hermes_telemetry` from the
/// environment (`HERMES_TRACE`, `HERMES_TRACE_BUF`), stamps the standard
/// report metadata (scale, fault seed), and on success emits the
/// `BENCH_<exp>.json` report — to the path given by a uniform `--out`
/// flag, or to stdout when tracing is enabled without one.
pub fn run_experiment(name: &str, body: impl FnOnce()) -> std::process::ExitCode {
    // Validate the scenario before anything else: a bad matrix file or a
    // malformed env override must die with one diagnosable line, not a
    // panic from deep inside the workload.
    let sc = match scenario_cached() {
        Ok(sc) => sc,
        Err(e) => {
            eprintln!("{name}: error: {e}");
            return std::process::ExitCode::FAILURE;
        }
    };
    // Project the scenario back into the environment for code that reads
    // knobs directly (the tcam fault plan reads HERMES_FAULT_SEED, the
    // telemetry layer reads HERMES_TRACE). Already-set variables win —
    // they were the overrides that shaped the scenario in the first place.
    for (k, v) in sc.env(None, 0).0 {
        if matches!(k.as_str(), "HERMES_REP" | "HERMES_SCENARIO") {
            continue;
        }
        if std::env::var_os(&k).is_none() {
            std::env::set_var(&k, &v);
        }
    }
    hermes_telemetry::init_from_env();
    hermes_telemetry::reset();
    report_meta("scale", &(scale() as u64));
    if sc.name != "adhoc" {
        hermes_telemetry::set_meta(
            "scenario",
            hermes_util::json::Json::Str(sc.name.clone()),
        );
    }
    if let Ok(seed) = std::env::var("HERMES_FAULT_SEED") {
        hermes_telemetry::set_meta("fault_seed", hermes_util::json::Json::Str(seed));
    }
    let out = out_path_from_args(std::env::args().skip(1));
    match catch_panic(body) {
        Ok(()) => {
            emit_report(name, out.as_deref());
            std::process::ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{name}: error: {e}");
            std::process::ExitCode::FAILURE
        }
    }
}

/// Registers one experiment-specific report metadata entry (seed, config
/// knobs…). Thin wrapper over [`hermes_telemetry::set_meta`] so binaries
/// only need the `hermes_bench` import they already have.
pub fn report_meta<T: hermes_util::json::ToJson>(key: &str, value: &T) {
    hermes_telemetry::set_meta(key, value.to_json());
}

/// Parses the uniform `--out <path>` / `--out=<path>` flag shared by every
/// experiment binary. Later occurrences win; all other arguments are left
/// for the binary's own parsing.
fn out_path_from_args(args: impl Iterator<Item = String>) -> Option<String> {
    let mut out = None;
    let mut args = args.peekable();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(v) = args.next() {
                out = Some(v);
            }
        } else if let Some(v) = a.strip_prefix("--out=") {
            out = Some(v.to_string());
        }
    }
    out
}

/// Emits the telemetry report for a finished experiment.
///
/// * `--out <path>` given: the report is written there (a directory gets
///   `BENCH_<exp>.json` inside it), whether or not tracing is enabled —
///   a disabled run still yields a valid, mostly-empty document.
/// * no `--out`, tracing enabled: the report prints to stdout after the
///   experiment's own output.
/// * no `--out`, tracing disabled: nothing is emitted (today's behavior).
fn emit_report(name: &str, out: Option<&str>) {
    let exp = name.strip_prefix("exp_").unwrap_or(name);
    if out.is_none() && !hermes_telemetry::enabled() {
        return;
    }
    let doc = hermes_telemetry::report(exp);
    match out {
        Some(path) => {
            let p = std::path::Path::new(path);
            let file = if p.is_dir() {
                p.join(format!("BENCH_{exp}.json"))
            } else {
                p.to_path_buf()
            };
            if let Err(e) = std::fs::write(&file, doc.to_string()) {
                eprintln!("warning: could not write {}: {e}", file.display());
            }
        }
        None => println!("{}", doc.to_string()),
    }
}

/// Writes a JSON document for downstream plotting when `HERMES_OUT` is set
/// to a directory: `<HERMES_OUT>/<name>.json`. No-op otherwise. Errors are
/// reported to stderr but never abort an experiment.
pub fn export_json<T: hermes_util::json::ToJson>(name: &str, value: &T) {
    let Ok(dir) = std::env::var("HERMES_OUT") else {
        return;
    };
    let path = std::path::Path::new(&dir).join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json().to_string()) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

#[cfg(test)]
mod json_tests {
    use super::*;
    use hermes_util::json::{Json, ToJson};

    #[test]
    fn json_documents_serialize_compactly() {
        let doc = Json::obj([
            ("name", "fig8 \"RIT\"\n".to_json()),
            ("points", vec![(1.0f64, 0.5f64), (2.5, 1.0)].to_json()),
            ("n", 42u64.to_json()),
            ("tail", Option::<f64>::None.to_json()),
            ("ok", true.to_json()),
        ]);
        assert_eq!(
            doc.to_string(),
            "{\"name\":\"fig8 \\\"RIT\\\"\\n\",\"points\":[[1,0.5],[2.5,1]],\"n\":42,\"tail\":null,\"ok\":true}"
        );
    }

    #[test]
    fn json_handles_non_finite_floats() {
        assert_eq!(vec![f64::NAN, 1.0].to_json().to_string(), "[null,1]");
    }

    #[test]
    fn json_serializes_samples() {
        let mut s = Samples::new();
        s.push(1.0);
        s.push(2.0);
        assert_eq!(s.to_json().to_string(), "[1,2]");
    }

    #[test]
    fn export_json_respects_env() {
        // Without HERMES_OUT: silent no-op.
        std::env::remove_var("HERMES_OUT");
        export_json("should_not_exist", &42u32);
        // With HERMES_OUT: file appears.
        let dir = std::env::temp_dir().join("hermes_export_test");
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("HERMES_OUT", &dir);
        export_json("answer", &vec![1u32, 2, 3]);
        let body = std::fs::read_to_string(dir.join("answer.json")).unwrap();
        assert_eq!(body, "[1,2,3]");
        std::env::remove_var("HERMES_OUT");
    }
}

#[cfg(test)]
mod te_batch_tests {
    use super::*;
    use hermes_rules::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn batches_are_deterministic_and_sized() {
        let a = te_batches(true, 500, 1.0, 9);
        let b = te_batches(true, 500, 1.0, 9);
        assert_eq!(a.len(), b.len());
        let inserts: usize = a
            .iter()
            .map(|(_, acts)| acts.iter().filter(|x| x.is_insert()).count())
            .sum();
        assert_eq!(inserts, 500);
        for ((t1, x), (t2, y)) in a.iter().zip(&b) {
            assert_eq!(t1, t2);
            assert_eq!(x, y);
        }
        // Timestamps strictly increase batch to batch.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn deletes_reference_earlier_inserts_only() {
        let batches = te_batches(false, 400, 2.0, 4);
        let mut seen: HashSet<RuleId> = HashSet::new();
        let mut deletes = 0usize;
        for (_, acts) in &batches {
            // Within a batch, inserts may interleave with deletes of rules
            // from *earlier* batches.
            let before: HashSet<RuleId> = seen.clone();
            for a in acts {
                match a {
                    ControlAction::Insert(r) => {
                        seen.insert(r.id);
                    }
                    ControlAction::Delete(id) => {
                        deletes += 1;
                        assert!(before.contains(id), "delete of not-yet-installed rule");
                        seen.remove(id);
                    }
                    _ => {}
                }
            }
        }
        assert!(deletes > 50, "teardown churn expected, got {deletes}");
    }

    #[test]
    fn dc_batches_are_aggregatable_isp_are_not() {
        // A batch "looks aggregatable" when it contains a group of ≥4
        // inserted rules sharing (priority, action) — the shape Tango's
        // minimizer can collapse.
        let agg = |dc: bool| -> f64 {
            let batches = te_batches(dc, 600, 1.0, 7);
            let mut aggregatable = 0usize;
            let mut total = 0usize;
            for (_, acts) in &batches {
                let mut groups: std::collections::HashMap<(u32, Action), usize> =
                    std::collections::HashMap::new();
                let mut inserts = 0usize;
                for a in acts {
                    if let ControlAction::Insert(r) = a {
                        inserts += 1;
                        *groups.entry((r.priority.0, r.action)).or_insert(0) += 1;
                    }
                }
                if inserts >= 8 {
                    total += 1;
                    if groups.values().any(|&n| n >= 4) {
                        aggregatable += 1;
                    }
                }
            }
            aggregatable as f64 / total.max(1) as f64
        };
        assert!(agg(true) > 0.8, "DC batches should look aggregatable");
        assert!(agg(false) < 0.3, "ISP batches should not");
    }
}
