//! **§2.1 takeaways** — the TCAM behaviours that motivate Hermes:
//!
//! 1. insertion time grows (roughly linearly) with the number of rules;
//! 2. rules with priorities are ~5× slower than rules without;
//! 3. insertion order matters (ascending vs descending priority can
//!    differ by ~10× depending on the switch's entry packing);
//! 4. deletion is fast and occupancy-independent;
//! 5. action modification is constant time.

#![forbid(unsafe_code)]

use hermes_bench::Table;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SwitchModel, TcamDevice};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// Workload RNG stream for this experiment (R7: streams are named per
/// subsystem so two experiments never silently draw the same sequence).
const TCAM_MICRO_STREAM_SALT: u64 = 9;

fn rule(id: u64, i: u32, prio: u32) -> Rule {
    Rule::new(
        id,
        Ipv4Prefix::new(i << 8, 24).to_key(),
        Priority(prio),
        Action::Forward(1),
    )
}

/// Mean insert latency of `n` probes at a pinned occupancy.
fn probe_insert(
    model: &SwitchModel,
    occupancy: usize,
    with_priority: bool,
    n: usize,
) -> SimDuration {
    let mut dev = TcamDevice::monolithic(model.clone());
    let mut rng = StdRng::seed_from_u64(TCAM_MICRO_STREAM_SALT);
    for i in 0..occupancy {
        dev.apply(
            0,
            &ControlAction::Insert(rule(i as u64, i as u32, rng.gen_range(1..10_000))),
        )
        .expect("INVARIANT: fault-free device with capacity sized for the fill");
    }
    let mut total = SimDuration::ZERO;
    for p in 0..n {
        let id = (occupancy + p) as u64;
        let prio = if with_priority {
            rng.gen_range(1..10_000)
        } else {
            0
        };
        let r = rule(id, (occupancy + p) as u32, prio);
        total += dev
            .apply(0, &ControlAction::Insert(r))
            .expect("INVARIANT: fault-free device with one reserved probe slot")
            .latency;
        dev.apply(0, &ControlAction::Delete(r.id)).expect("INVARIANT: deleting the probe rule installed above");
    }
    total / n as u64
}

/// Total time to install `n` rules in ascending vs descending priority
/// order.
fn ordered_install(model: &SwitchModel, n: usize, ascending: bool) -> SimDuration {
    let mut dev = TcamDevice::monolithic(model.clone());
    let mut total = SimDuration::ZERO;
    for i in 0..n {
        let prio = if ascending {
            10 + i as u32
        } else {
            10 + (n - i) as u32
        };
        total += dev
            .apply(0, &ControlAction::Insert(rule(i as u64, i as u32, prio)))
            .expect("INVARIANT: fault-free device with capacity sized for the fill")
            .latency;
    }
    total
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_tcam_micro", run)
}

fn run() {
    let probes = hermes_bench::scenario().knob_u64("probes", 100) as usize;
    let n = probes * hermes_bench::scale();
    hermes_bench::report_meta("n", &(n as u64));
    println!("== §2.1 microbenchmarks: TCAM behaviour ==\n");

    println!("-- (1) Insert latency vs occupancy (random priorities) --");
    let mut t = Table::new(&[
        "Occupancy",
        "Pica8 P-3290 (ms)",
        "Dell 8132F (ms)",
        "HP 5406zl (ms)",
    ]);
    for occ in [0usize, 100, 250, 500, 1000, 1500] {
        let mut cells = vec![occ.to_string()];
        for m in SwitchModel::paper_models() {
            if occ >= m.capacity {
                cells.push("-".into());
                continue;
            }
            cells.push(format!("{:.3}", probe_insert(&m, occ, true, n).as_ms()));
        }
        t.row(&cells);
    }
    t.print();

    println!("\n-- (2) Priority vs no-priority insertions --");
    let mut t = Table::new(&["Switch", "with prio (ms)", "without prio (ms)", "slowdown"]);
    for m in SwitchModel::paper_models() {
        let with = probe_insert(&m, 500, true, n).as_ms();
        let without = probe_insert(&m, 500, false, n).as_ms();
        t.row(&[
            m.name.clone(),
            format!("{with:.3}"),
            format!("{without:.3}"),
            format!("{:.1}x", with / without),
        ]);
    }
    t.print();
    println!("(paper: \"rules with priorities are five times slower than rules without\")");

    println!("\n-- (3) Insertion-order effects ({n} rules) --");
    let mut t = Table::new(&["Switch", "ascending (ms)", "descending (ms)", "ratio"]);
    for m in SwitchModel::paper_models() {
        let asc = ordered_install(&m, n, true).as_ms();
        let desc = ordered_install(&m, n, false).as_ms();
        let ratio = if asc > desc { asc / desc } else { desc / asc };
        t.row(&[
            m.name.clone(),
            format!("{asc:.1}"),
            format!("{desc:.1}"),
            format!("{ratio:.1}x"),
        ]);
    }
    t.print();
    println!("(paper: \"installing rules in ascending order of priorities is ten-times faster\n than descending order\" — direction depends on the switch's entry packing)");

    println!("\n-- (4,5) Deletion and modification vs occupancy --");
    let mut t = Table::new(&[
        "Switch",
        "delete @100 (ms)",
        "delete @1000",
        "modify @100",
        "modify @1000",
    ]);
    for m in SwitchModel::paper_models() {
        let mut cells = vec![m.name.clone()];
        for occ in [100usize, 1000] {
            let mut dev = TcamDevice::monolithic(m.clone());
            for i in 0..occ.min(m.capacity - 1) {
                dev.apply(
                    0,
                    &ControlAction::Insert(rule(i as u64, i as u32, 5 + i as u32)),
                )
                .expect("INVARIANT: fault-free device with capacity sized for the fill");
            }
            let d = dev
                .apply(0, &ControlAction::Delete(RuleId(0)))
                .expect("INVARIANT: deleting a rule installed above")
                .latency;
            cells.push(format!("{:.3}", d.as_ms()));
        }
        for occ in [100usize, 1000] {
            let mut dev = TcamDevice::monolithic(m.clone());
            for i in 0..occ.min(m.capacity - 1) {
                dev.apply(
                    0,
                    &ControlAction::Insert(rule(i as u64, i as u32, 5 + i as u32)),
                )
                .expect("INVARIANT: fault-free device with capacity sized for the fill");
            }
            let d = dev
                .apply(
                    0,
                    &ControlAction::Modify {
                        id: RuleId(1),
                        action: Some(Action::Drop),
                        priority: None,
                    },
                )
                .expect("INVARIANT: modifying a rule installed above")
                .latency;
            cells.push(format!("{:.3}", d.as_ms()));
        }
        // Reorder cells: name, del@100, del@1000, mod@100, mod@1000.
        t.row(&cells);
    }
    t.print();
    println!("(both constant — independent of occupancy, far cheaper than insertion)");
}
