//! **Fleet pipeline** — the sharded multi-switch controller under a
//! fat-tree-scale preload plus path-transaction churn.
//!
//! N Hermes planes shard across L deterministic worker lanes; the same
//! seeded workload — two-phase path installs across random member
//! slices, background single-rule churn, periodic crash injections — is
//! driven once with `lanes = 1` (every device op in the fleet serializes
//! through one driver) and once with `lanes = L`. The lanes overlap
//! shadow installs on one switch with in-flight work on others, so the
//! modeled makespan contracts by ≈ L on a balanced assignment; the gate
//! asserts ≥ 2× control-plane throughput at L ≥ 4.
//!
//! Crash injections open rollback windows mid-churn: transactions that
//! hit a down member abort and retract everywhere, and the quiescence
//! sweep proves the fleet carries no rollback debt afterwards.
//!
//! The **rebalancing storm** (phase 2) drives one pre-built skewed
//! schedule — 80% of pieces land on the five members sharing home lane 0,
//! with replacement, and a fixed hot-set victim crash-loops on a schedule
//! keyed by transaction index — through three arms: (A) pinned lanes
//! with per-piece submits (the round-robin strawman), (B) weighted
//! scheduling with per-member piece coalescing (the gated win: ≥ 1.5×
//! modeled throughput over A), and (C) arm B plus the TE rebalancer
//! steering each transaction across three candidate slices and migrating
//! rule load off pressure-hot members mid-storm.

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, HermesPlane};
use hermes_bench::Table;
use hermes_core::prelude::*;
use hermes_fleet::{
    lane_assignment, Fleet, FleetConfig, LaneSched, RebalancePolicy, Rebalancer, SwitchId,
};
use hermes_rules::prelude::*;
use hermes_tcam::{CrashKind, SimDuration, SimTime, SwitchModel};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use std::collections::BTreeMap;

struct Outcome {
    horizon_ms: f64,
    throughput_kops: f64,
    ops: u64,
    commits: u64,
    rollbacks: u64,
    occupancy: usize,
    mean_rit_ms: f64,
    sweeps: u32,
}

fn churn_rule(id: u64, rng: &mut StdRng) -> Rule {
    let addr = 0x0a00_0000u32 | Rng::gen_range(rng, 0..1u32 << 24);
    let prio = 200 + Rng::gen_range(rng, 0..1600u32);
    Rule::new(
        id,
        Ipv4Prefix::new(addr, 24).to_key(),
        Priority(prio),
        Action::Forward(prio % 47 + 1),
    )
}

/// N Hermes planes with admission control off (the exp_crash precedent:
/// the experiment measures device-channel and lane throughput, and the
/// token bucket would otherwise reward the slower driver).
fn build_fleet(switches: usize, config: FleetConfig) -> Fleet<HermesPlane> {
    let hermes = HermesConfig {
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let members: Vec<(SwitchId, HermesPlane)> = (0..switches)
        .map(|i| {
            let sw = HermesSwitch::new(SwitchModel::pica8_p3290(), hermes.clone())
                .expect("INVARIANT: fixed experiment config is feasible for this model");
            (i, HermesPlane::new(sw))
        })
        .collect();
    Fleet::new(members, config)
}

/// Fat-tree-style preload: disjoint FIB rules spread across the whole
/// priority band, drained into the main table before the churn starts.
/// Returns the next free rule id.
fn preload_fleet(fleet: &mut Fleet<HermesPlane>, preload: usize) -> u64 {
    let mut next_id = 0u64;
    for sw in fleet.switch_ids() {
        let batch: Vec<ControlAction> = (0..preload)
            .map(|i| {
                let addr = (0b11u32 << 30) | ((i as u32) << 12);
                let r = Rule::new(
                    next_id,
                    Ipv4Prefix::new(addr, 24).to_key(),
                    Priority(10 + ((i as u32).wrapping_mul(37)) % 1980),
                    Action::Forward((i % 48) as u32),
                );
                next_id += 1;
                ControlAction::Insert(r)
            })
            .collect();
        let p = fleet.plane_mut(sw);
        p.apply_batch(&batch, SimTime::ZERO);
        p.tick(SimTime::ZERO);
        p.end_warmup();
        p.tick(SimTime::ZERO);
        p.end_warmup();
    }
    fleet.end_warmup_all();
    next_id
}

/// Quiescence: ticks past the makespan drive reconnect + resync +
/// rollback re-drives until every member is clean, then asserts the
/// intent stores and logical tables agree.
fn quiesce(fleet: &mut Fleet<HermesPlane>, horizon: SimTime) -> u32 {
    let mut now = horizon;
    let mut sweeps = 0u32;
    loop {
        now += SimDuration::from_ms(5.0);
        fleet.tick_all(now);
        let mut all = fleet.pending_rollback_len() == 0;
        for sw in fleet.switch_ids() {
            let s = fleet.plane_mut(sw).switch_mut();
            let clean = s.audit(now).clean();
            all = all && clean && !s.is_down() && !s.is_degraded() && s.deferred_len() == 0;
        }
        if all {
            break;
        }
        sweeps += 1;
        assert!(
            sweeps < 128,
            "fleet failed to quiesce within 128 audit sweeps"
        );
    }
    for (_, p) in fleet.planes() {
        assert_eq!(
            p.switch().intent_len(),
            p.switch().logical_len(),
            "intent store and logical table must agree after recovery"
        );
    }
    sweeps
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    lanes: usize,
    switches: usize,
    preload: usize,
    paths: usize,
    span: usize,
    crash_every: usize,
    seed: u64,
) -> Outcome {
    // Admission control off (the exp_crash precedent): the experiment
    // measures device-channel and lane throughput, and the token bucket
    // would otherwise reward the slower driver — ops serviced later see a
    // refilled bucket and route cheaper, masking the pipeline win.
    let mut fleet = build_fleet(
        switches,
        FleetConfig {
            lanes,
            seed,
            ..FleetConfig::default()
        },
    );
    // Each transaction consumes `span` piece ids plus one background id,
    // so ids stay sequential without a running counter.
    let base_id = preload_fleet(&mut fleet, preload);

    // Churn: path transactions across random member slices arrive far
    // faster than the devices drain, so the makespan is set by the lanes,
    // not the arrival process. Periodic crash injections open rollback
    // windows mid-stream.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x464c_4545_5421_2121);
    let mut now = SimTime::ZERO;
    let mut rit_sum_ms = 0.0;
    let mut rit_n = 0u64;
    let mut crash_index = 0u64;
    for t in 0..paths {
        now += SimDuration::from_us(10.0);
        if crash_every > 0 && t % crash_every == crash_every - 1 {
            let victim = Rng::gen_range(&mut rng, 0..switches);
            let kind = match crash_index % 3 {
                0 => CrashKind::Wipe,
                1 => CrashKind::Partial { survivor_prob: 0.5 },
                _ => CrashKind::Disconnect,
            };
            fleet.plane_mut(victim).inject_crash(
                kind,
                seed ^ crash_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                1,
                now,
            );
            crash_index += 1;
        }
        let txn_base = base_id + (t * (span + 1)) as u64;
        let first = Rng::gen_range(&mut rng, 0..switches);
        let pieces: Vec<(SwitchId, Rule)> = (0..span)
            .map(|k| {
                let r = churn_rule(txn_base + k as u64, &mut rng);
                ((first + k) % switches, r)
            })
            .collect();
        let out = fleet.install_path(&pieces, now);
        for op in &out.ops {
            rit_sum_ms += op.done.since(now).as_ms();
            rit_n += 1;
        }
        // Light background churn on one member alongside the transaction.
        let sw = Rng::gen_range(&mut rng, 0..switches);
        let r = churn_rule(txn_base + span as u64, &mut rng);
        fleet.submit(sw, &[ControlAction::Insert(r)], now);
        if t % 16 == 15 {
            fleet.tick_all(now);
        }
    }

    let horizon = fleet.horizon();
    let stats_mid = fleet.stats();
    let sweeps = quiesce(&mut fleet, horizon);
    let stats = fleet.stats();
    let horizon_ms = horizon.as_nanos() as f64 / 1e6;
    let throughput_kops = if horizon_ms > 0.0 {
        stats_mid.ops as f64 / horizon_ms
    } else {
        0.0
    };
    Outcome {
        horizon_ms,
        throughput_kops,
        ops: stats_mid.ops,
        commits: stats.txn_commits,
        rollbacks: stats.txn_rollbacks,
        occupancy: fleet.occupancy(),
        mean_rit_ms: if rit_n > 0 {
            rit_sum_ms / rit_n as f64
        } else {
            0.0
        },
        sweeps,
    }
}

/// One pre-built storm transaction: an optional crash injection (fired
/// identically in every arm), three candidate member slices, and the
/// rule payload. Everything is drawn up front so the three arms drive a
/// byte-identical workload.
struct StormTxn {
    crash: Option<(SwitchId, CrashKind, u64)>,
    cands: Vec<Vec<SwitchId>>,
    rules: Vec<Rule>,
}

/// Builds the skewed storm schedule: 80% of each transaction's pieces
/// land on the hot set (the members sharing home lane 0 under the pinned
/// assignment), drawn WITH replacement so coalescing has duplicates to
/// collapse; the remaining two candidate slices are uniform. A fixed
/// hot-set victim crash-loops every `crash_every` transactions, keyed by
/// transaction index so the fault schedule is identical across arms.
/// Returns the schedule and the hot set.
fn build_storm(
    switches: usize,
    lanes: usize,
    paths: usize,
    span: usize,
    crash_every: usize,
    seed: u64,
) -> (Vec<StormTxn>, Vec<SwitchId>) {
    let assignment = lane_assignment(switches, lanes, seed);
    let hot: Vec<SwitchId> = (0..switches).filter(|&i| assignment[i] == 0).collect();
    let victim = hot[0];
    let mut rng = StdRng::seed_from_u64(seed ^ STORM_SALT);
    // Storm rule ids live far above the preload/churn band.
    let mut next_id = 10_000_000u64;
    let mut crash_index = 0u64;
    let mut txns = Vec::with_capacity(paths);
    for t in 0..paths {
        let crash = if crash_every > 0 && t % crash_every == crash_every - 1 {
            let kind = match crash_index % 3 {
                0 => CrashKind::Wipe,
                1 => CrashKind::Partial { survivor_prob: 0.5 },
                _ => CrashKind::Disconnect,
            };
            let c = (
                victim,
                kind,
                seed ^ crash_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            );
            crash_index += 1;
            Some(c)
        } else {
            None
        };
        let skewed: Vec<SwitchId> = (0..span)
            .map(|_| {
                if Rng::gen_range(&mut rng, 0..10u32) < 8 {
                    hot[Rng::gen_range(&mut rng, 0..hot.len())]
                } else {
                    Rng::gen_range(&mut rng, 0..switches)
                }
            })
            .collect();
        let mut cands = vec![skewed];
        for _ in 0..2 {
            cands.push(
                (0..span)
                    .map(|_| Rng::gen_range(&mut rng, 0..switches))
                    .collect(),
            );
        }
        let rules: Vec<Rule> = (0..span)
            .map(|_| {
                let r = churn_rule(next_id, &mut rng);
                next_id += 1;
                r
            })
            .collect();
        txns.push(StormTxn { crash, cands, rules });
    }
    (txns, hot)
}

struct StormOutcome {
    horizon_ms: f64,
    /// Staged pieces per millisecond of makespan — the numerator is the
    /// fixed schedule size, so arms compare on makespan alone.
    thr_pieces_per_ms: f64,
    commits: u64,
    rollbacks: u64,
    steals: u64,
    coalesced: u64,
    steered: u64,
    migrations: u64,
    rules_moved: u64,
    sweeps: u32,
}

/// One arm's policy knobs for the storm: which lane scheduler runs, and
/// whether coalescing and TE-driven rebalancing are armed.
struct StormArm {
    sched: LaneSched,
    coalesce: bool,
    rebalance: bool,
}

/// Drives the pre-built storm schedule through one arm. Without
/// `arm.rebalance`, every transaction takes the first (skewed) candidate
/// slice; with it, the [`Rebalancer`] scores the fleet per transaction,
/// picks among the three slices, and every 32 transactions migrates up
/// to 8 committed rules off each pressure-hot member.
fn run_storm(
    schedule: &[StormTxn],
    switches: usize,
    lanes: usize,
    preload: usize,
    seed: u64,
    arm: &StormArm,
) -> StormOutcome {
    let rebalance = arm.rebalance;
    let mut fleet = build_fleet(
        switches,
        FleetConfig {
            lanes,
            seed,
            sched: arm.sched,
            coalesce: arm.coalesce,
        },
    );
    preload_fleet(&mut fleet, preload);
    // Two policies, two time scales. Steering reacts to *instantaneous*
    // channel pressure (the default, backlog-dominated scoring) and — as
    // a greedy balancer — flattens exactly the signal it reads, so by
    // migration time the backlog skew is gone. Migration therefore plans
    // on *durable* rule load alone (occupancy-only scoring), which
    // steering does not equalize: the skewed slices keep depositing rules
    // on the hot set whenever they win a pick.
    let mut rb = Rebalancer::new(RebalancePolicy::default());
    let mut mig = Rebalancer::new(RebalancePolicy {
        backlog_us_weight: 0.0,
        rit_us_weight: 0.0,
        hot_factor: 1.1,
        ..RebalancePolicy::default()
    });
    // Committed storm rules by current owner, oldest first — the
    // migration pool.
    let mut owners: BTreeMap<SwitchId, Vec<Rule>> = BTreeMap::new();
    let mut now = SimTime::ZERO;
    for (t, txn) in schedule.iter().enumerate() {
        now += SimDuration::from_us(10.0);
        if let Some((victim, kind, crash_seed)) = txn.crash {
            fleet.plane_mut(victim).inject_crash(kind, crash_seed, 1, now);
        }
        let pick = if rebalance {
            let scores = rb.scores(&fleet.member_health(now));
            rb.pick_slice(&txn.cands, &scores)
        } else {
            0
        };
        let pieces: Vec<(SwitchId, Rule)> = txn.cands[pick]
            .iter()
            .copied()
            .zip(txn.rules.iter().copied())
            .collect();
        let out = fleet.install_path(&pieces, now);
        if out.committed {
            for (sw, r) in &pieces {
                owners.entry(*sw).or_default().push(*r);
            }
        }
        if t % 16 == 15 {
            fleet.tick_all(now);
        }
        if rebalance && t % 32 == 31 {
            let plan = mig.plan_moves(&fleet.member_health(now));
            for (hot_sw, cold_sw) in plan {
                let batch: Vec<Rule> = owners
                    .get(&hot_sw)
                    .map(|v| v.iter().take(8).copied().collect())
                    .unwrap_or_default();
                if batch.is_empty() {
                    continue;
                }
                let moved = fleet.migrate_rules(hot_sw, cold_sw, &batch, now);
                if moved.committed {
                    let pool = owners
                        .get_mut(&hot_sw)
                        .expect("INVARIANT: batch came from this owner's pool");
                    pool.drain(..batch.len());
                    owners.entry(cold_sw).or_default().extend(batch);
                }
            }
        }
    }

    let horizon = fleet.horizon();
    let stats_mid = fleet.stats();
    let sweeps = quiesce(&mut fleet, horizon);
    let stats = fleet.stats();
    let horizon_ms = horizon.as_nanos() as f64 / 1e6;
    let pieces_total: usize = schedule.iter().map(|t| t.rules.len()).sum();
    StormOutcome {
        horizon_ms,
        thr_pieces_per_ms: if horizon_ms > 0.0 {
            pieces_total as f64 / horizon_ms
        } else {
            0.0
        },
        commits: stats.txn_commits,
        rollbacks: stats.txn_rollbacks,
        steals: stats_mid.steals,
        coalesced: stats_mid.coalesced_pieces,
        steered: rb.stats().steered,
        migrations: stats.migrations,
        rules_moved: stats.rules_moved,
        sweeps,
    }
}

/// Seed-mixing constant for the storm schedule (its own stream — the
/// phase-1 churn stream stays untouched).
const STORM_SALT: u64 = 0x5354_4f52_4d32_2121;

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fleet", run_experiment_body)
}

fn run_experiment_body() {
    let switches = hermes_bench::scenario().knob_u64("switches", 20) as usize;
    let lanes = hermes_bench::scenario().knob_u64("lanes", 4) as usize;
    let preload = hermes_bench::scenario().knob_u64("preload", 150) as usize;
    let paths = hermes_bench::scenario().knob_u64("paths", 400) as usize * hermes_bench::scale();
    let span = hermes_bench::scenario().knob_u64("span", 3) as usize;
    let crash_every = hermes_bench::scenario().knob_u64("crash_every", 50) as usize;
    let seed = hermes_bench::scenario().knob_u64("seed", 7);
    hermes_bench::report_meta("switches", &(switches as u64));
    hermes_bench::report_meta("lanes", &(lanes as u64));
    hermes_bench::report_meta("paths", &(paths as u64));

    println!("== Fleet pipeline: sharded lanes vs a serialized driver ==\n");
    println!(
        "{switches} Hermes switches, {preload} preloaded rules each, {paths} path \
         transactions of {span} pieces, a crash every {crash_every} transactions, seed {seed}\n"
    );

    let mut t = Table::new(&[
        "Lanes",
        "Ops",
        "Makespan (ms)",
        "Thr (ops/ms)",
        "Mean RIT (ms)",
        "Commits",
        "Rollbacks",
        "Occupancy",
        "Sweeps",
    ]);
    let serial = run_phase(1, switches, preload, paths, span, crash_every, seed);
    let sharded = run_phase(lanes, switches, preload, paths, span, crash_every, seed);
    for (label, o) in [("1", &serial), (&lanes.to_string(), &sharded)] {
        t.row(&[
            label.to_string(),
            o.ops.to_string(),
            format!("{:.3}", o.horizon_ms),
            format!("{:.3}", o.throughput_kops),
            format!("{:.3}", o.mean_rit_ms),
            o.commits.to_string(),
            o.rollbacks.to_string(),
            o.occupancy.to_string(),
            o.sweeps.to_string(),
        ]);
    }
    t.print();

    let speedup = if serial.throughput_kops > 0.0 {
        sharded.throughput_kops / serial.throughput_kops
    } else {
        0.0
    };
    println!(
        "\nthroughput speedup at lanes={lanes}: {speedup:.2}x over the serialized driver\n\
         (an op occupies its switch's control channel and its lane; sharding\n\
         overlaps shadow installs on one switch with migrations on others)"
    );

    assert!(
        serial.rollbacks >= 1,
        "the crash schedule must abort at least one transaction"
    );
    assert_eq!(
        serial.commits + serial.rollbacks,
        paths as u64,
        "every transaction either commits or rolls back"
    );
    assert_eq!(
        serial.ops, sharded.ops,
        "both lane configurations drive the identical workload"
    );
    if lanes >= 4 {
        assert!(
            speedup >= 2.0,
            "lanes={lanes} must deliver >=2x modeled throughput over lanes=1 (got {speedup:.2}x)"
        );
    }

    // ---- Phase 2: the skewed rebalancing storm ----------------------
    let storm_paths =
        hermes_bench::scenario().knob_u64("storm_paths", 400) as usize * hermes_bench::scale();
    let storm_span = hermes_bench::scenario().knob_u64("storm_span", 4) as usize;
    let storm_crash_every = hermes_bench::scenario().knob_u64("storm_crash_every", 25) as usize;
    hermes_bench::report_meta("storm_paths", &(storm_paths as u64));

    let (schedule, hot) = build_storm(switches, lanes, storm_paths, storm_span, storm_crash_every, seed);
    println!(
        "\n== Rebalancing storm: skewed load over the lane-0 hot set ==\n\n\
         {storm_paths} transactions of {storm_span} pieces, 80% of pieces on the \
         {}-member hot set (with replacement), member {} crash-looping every \
         {storm_crash_every} transactions\n",
        hot.len(),
        hot[0],
    );

    let arm_a = run_storm(&schedule, switches, lanes, preload, seed, &StormArm {
        sched: LaneSched::Pinned, coalesce: false, rebalance: false,
    });
    let arm_b = run_storm(&schedule, switches, lanes, preload, seed, &StormArm {
        sched: LaneSched::Weighted, coalesce: true, rebalance: false,
    });
    let arm_c = run_storm(&schedule, switches, lanes, preload, seed, &StormArm {
        sched: LaneSched::Weighted, coalesce: true, rebalance: true,
    });

    let mut st = Table::new(&[
        "Arm",
        "Makespan (ms)",
        "Thr (pieces/ms)",
        "Commits",
        "Rollbacks",
        "Steals",
        "Coalesced",
        "Steered",
        "Migrations",
        "Moved",
        "Sweeps",
    ]);
    for (label, o) in [
        ("A pinned+per-piece", &arm_a),
        ("B weighted+coalesce", &arm_b),
        ("C  + rebalancer", &arm_c),
    ] {
        st.row(&[
            label.to_string(),
            format!("{:.3}", o.horizon_ms),
            format!("{:.3}", o.thr_pieces_per_ms),
            o.commits.to_string(),
            o.rollbacks.to_string(),
            o.steals.to_string(),
            o.coalesced.to_string(),
            o.steered.to_string(),
            o.migrations.to_string(),
            o.rules_moved.to_string(),
            o.sweeps.to_string(),
        ]);
    }
    st.print();

    let storm_win = if arm_a.thr_pieces_per_ms > 0.0 {
        arm_b.thr_pieces_per_ms / arm_a.thr_pieces_per_ms
    } else {
        0.0
    };
    println!(
        "\nstorm win (weighted scheduling + piece coalescing over pinned \
         per-piece): {storm_win:.2}x\n(the hot set shares home lane 0: pinned \
         dispatch serializes 80% of the storm\n through one lane while weighted \
         dispatch spreads the same member channels\n across all {lanes})"
    );

    for (label, o) in [("A", &arm_a), ("B", &arm_b), ("C", &arm_c)] {
        assert_eq!(
            o.commits + o.rollbacks,
            storm_paths as u64,
            "arm {label}: every storm transaction either commits or rolls back"
        );
    }
    assert_eq!(arm_a.steals, 0, "pinned dispatch never leaves the home lane");
    assert_eq!(arm_a.coalesced, 0, "per-piece mode submits every piece alone");
    assert!(
        arm_b.steals > 0 && arm_b.coalesced > 0,
        "the weighted arm must actually steal ({}) and coalesce ({})",
        arm_b.steals,
        arm_b.coalesced,
    );
    assert!(
        arm_c.steered > 0,
        "member health must overrule the skewed slice at least once"
    );
    assert!(
        arm_c.migrations >= 1,
        "at least one migration must drain the hot set (moved {} rules)",
        arm_c.rules_moved,
    );
    assert!(
        arm_c.rollbacks < arm_b.rollbacks,
        "steering away from the crash-looping victim must cut rollbacks \
         (C {} vs B {})",
        arm_c.rollbacks,
        arm_b.rollbacks,
    );
    if lanes >= 4 {
        assert!(
            storm_win >= 1.5,
            "weighted scheduling + coalescing must deliver >=1.5x modeled \
             throughput over pinned per-piece dispatch on the skewed storm \
             (got {storm_win:.2}x)"
        );
    }
}
