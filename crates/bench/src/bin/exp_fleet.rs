//! **Fleet pipeline** — the sharded multi-switch controller under a
//! fat-tree-scale preload plus path-transaction churn.
//!
//! N Hermes planes shard across L deterministic worker lanes; the same
//! seeded workload — two-phase path installs across random member
//! slices, background single-rule churn, periodic crash injections — is
//! driven once with `lanes = 1` (every device op in the fleet serializes
//! through one driver) and once with `lanes = L`. The lanes overlap
//! shadow installs on one switch with in-flight work on others, so the
//! modeled makespan contracts by ≈ L on a balanced assignment; the gate
//! asserts ≥ 2× control-plane throughput at L ≥ 4.
//!
//! Crash injections open rollback windows mid-churn: transactions that
//! hit a down member abort and retract everywhere, and the quiescence
//! sweep proves the fleet carries no rollback debt afterwards.

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, HermesPlane};
use hermes_bench::Table;
use hermes_core::prelude::*;
use hermes_fleet::{Fleet, FleetConfig, SwitchId};
use hermes_rules::prelude::*;
use hermes_tcam::{CrashKind, SimDuration, SimTime, SwitchModel};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

struct Outcome {
    horizon_ms: f64,
    throughput_kops: f64,
    ops: u64,
    commits: u64,
    rollbacks: u64,
    occupancy: usize,
    mean_rit_ms: f64,
    sweeps: u32,
}

fn churn_rule(id: u64, rng: &mut StdRng) -> Rule {
    let addr = 0x0a00_0000u32 | Rng::gen_range(rng, 0..1u32 << 24);
    let prio = 200 + Rng::gen_range(rng, 0..1600u32);
    Rule::new(
        id,
        Ipv4Prefix::new(addr, 24).to_key(),
        Priority(prio),
        Action::Forward(prio % 47 + 1),
    )
}

#[allow(clippy::too_many_arguments)]
fn run_phase(
    lanes: usize,
    switches: usize,
    preload: usize,
    paths: usize,
    span: usize,
    crash_every: usize,
    seed: u64,
) -> Outcome {
    // Admission control off (the exp_crash precedent): the experiment
    // measures device-channel and lane throughput, and the token bucket
    // would otherwise reward the slower driver — ops serviced later see a
    // refilled bucket and route cheaper, masking the pipeline win.
    let config = HermesConfig {
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let members: Vec<(SwitchId, HermesPlane)> = (0..switches)
        .map(|i| {
            let sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config.clone())
                .expect("INVARIANT: fixed experiment config is feasible for this model");
            (i, HermesPlane::new(sw))
        })
        .collect();
    let mut fleet = Fleet::new(members, FleetConfig { lanes, seed });

    // Fat-tree-style preload: disjoint FIB rules spread across the whole
    // priority band, drained into the main table before the churn starts.
    let mut next_id = 0u64;
    for sw in fleet.switch_ids() {
        let batch: Vec<ControlAction> = (0..preload)
            .map(|i| {
                let addr = (0b11u32 << 30) | ((i as u32) << 12);
                let r = Rule::new(
                    next_id,
                    Ipv4Prefix::new(addr, 24).to_key(),
                    Priority(10 + ((i as u32).wrapping_mul(37)) % 1980),
                    Action::Forward((i % 48) as u32),
                );
                next_id += 1;
                ControlAction::Insert(r)
            })
            .collect();
        let p = fleet.plane_mut(sw);
        p.apply_batch(&batch, SimTime::ZERO);
        p.tick(SimTime::ZERO);
        p.end_warmup();
        p.tick(SimTime::ZERO);
        p.end_warmup();
    }
    fleet.end_warmup_all();

    // Churn: path transactions across random member slices arrive far
    // faster than the devices drain, so the makespan is set by the lanes,
    // not the arrival process. Periodic crash injections open rollback
    // windows mid-stream.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x464c_4545_5421_2121);
    let mut now = SimTime::ZERO;
    let mut rit_sum_ms = 0.0;
    let mut rit_n = 0u64;
    let mut crash_index = 0u64;
    for t in 0..paths {
        now += SimDuration::from_us(10.0);
        if crash_every > 0 && t % crash_every == crash_every - 1 {
            let victim = Rng::gen_range(&mut rng, 0..switches);
            let kind = match crash_index % 3 {
                0 => CrashKind::Wipe,
                1 => CrashKind::Partial { survivor_prob: 0.5 },
                _ => CrashKind::Disconnect,
            };
            fleet.plane_mut(victim).inject_crash(
                kind,
                seed ^ crash_index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
                1,
                now,
            );
            crash_index += 1;
        }
        let first = Rng::gen_range(&mut rng, 0..switches);
        let pieces: Vec<(SwitchId, Rule)> = (0..span)
            .map(|k| {
                let r = churn_rule(next_id, &mut rng);
                next_id += 1;
                ((first + k) % switches, r)
            })
            .collect();
        let out = fleet.install_path(&pieces, now);
        for op in &out.ops {
            rit_sum_ms += op.done.since(now).as_ms();
            rit_n += 1;
        }
        // Light background churn on one member alongside the transaction.
        let sw = Rng::gen_range(&mut rng, 0..switches);
        let r = churn_rule(next_id, &mut rng);
        next_id += 1;
        fleet.submit(sw, &[ControlAction::Insert(r)], now);
        if t % 16 == 15 {
            fleet.tick_all(now);
        }
    }

    let horizon = fleet.horizon();
    let stats_mid = fleet.stats();

    // Quiescence: ticks past the makespan drive reconnect + resync +
    // rollback re-drives until every member is clean.
    now = horizon;
    let mut sweeps = 0u32;
    loop {
        now += SimDuration::from_ms(5.0);
        fleet.tick_all(now);
        let mut all = fleet.pending_rollback_len() == 0;
        for sw in fleet.switch_ids() {
            let s = fleet.plane_mut(sw).switch_mut();
            let clean = s.audit(now).clean();
            all = all && clean && !s.is_down() && !s.is_degraded() && s.deferred_len() == 0;
        }
        if all {
            break;
        }
        sweeps += 1;
        assert!(
            sweeps < 128,
            "fleet failed to quiesce within 128 audit sweeps"
        );
    }
    for (_, p) in fleet.planes() {
        assert_eq!(
            p.switch().intent_len(),
            p.switch().logical_len(),
            "intent store and logical table must agree after recovery"
        );
    }

    let stats = fleet.stats();
    let horizon_ms = horizon.as_nanos() as f64 / 1e6;
    let throughput_kops = if horizon_ms > 0.0 {
        stats_mid.ops as f64 / horizon_ms
    } else {
        0.0
    };
    Outcome {
        horizon_ms,
        throughput_kops,
        ops: stats_mid.ops,
        commits: stats.txn_commits,
        rollbacks: stats.txn_rollbacks,
        occupancy: fleet.occupancy(),
        mean_rit_ms: if rit_n > 0 {
            rit_sum_ms / rit_n as f64
        } else {
            0.0
        },
        sweeps,
    }
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fleet", run_experiment_body)
}

fn run_experiment_body() {
    let switches = hermes_bench::scenario().knob_u64("switches", 20) as usize;
    let lanes = hermes_bench::scenario().knob_u64("lanes", 4) as usize;
    let preload = hermes_bench::scenario().knob_u64("preload", 150) as usize;
    let paths = hermes_bench::scenario().knob_u64("paths", 400) as usize * hermes_bench::scale();
    let span = hermes_bench::scenario().knob_u64("span", 3) as usize;
    let crash_every = hermes_bench::scenario().knob_u64("crash_every", 50) as usize;
    let seed = hermes_bench::scenario().knob_u64("seed", 7);
    hermes_bench::report_meta("switches", &(switches as u64));
    hermes_bench::report_meta("lanes", &(lanes as u64));
    hermes_bench::report_meta("paths", &(paths as u64));

    println!("== Fleet pipeline: sharded lanes vs a serialized driver ==\n");
    println!(
        "{switches} Hermes switches, {preload} preloaded rules each, {paths} path \
         transactions of {span} pieces, a crash every {crash_every} transactions, seed {seed}\n"
    );

    let mut t = Table::new(&[
        "Lanes",
        "Ops",
        "Makespan (ms)",
        "Thr (ops/ms)",
        "Mean RIT (ms)",
        "Commits",
        "Rollbacks",
        "Occupancy",
        "Sweeps",
    ]);
    let serial = run_phase(1, switches, preload, paths, span, crash_every, seed);
    let sharded = run_phase(lanes, switches, preload, paths, span, crash_every, seed);
    for (label, o) in [("1", &serial), (&lanes.to_string(), &sharded)] {
        t.row(&[
            label.to_string(),
            o.ops.to_string(),
            format!("{:.3}", o.horizon_ms),
            format!("{:.3}", o.throughput_kops),
            format!("{:.3}", o.mean_rit_ms),
            o.commits.to_string(),
            o.rollbacks.to_string(),
            o.occupancy.to_string(),
            o.sweeps.to_string(),
        ]);
    }
    t.print();

    let speedup = if serial.throughput_kops > 0.0 {
        sharded.throughput_kops / serial.throughput_kops
    } else {
        0.0
    };
    println!(
        "\nthroughput speedup at lanes={lanes}: {speedup:.2}x over the serialized driver\n\
         (an op occupies its switch's control channel and its lane; sharding\n\
         overlaps shadow installs on one switch with migrations on others)"
    );

    assert!(
        serial.rollbacks >= 1,
        "the crash schedule must abort at least one transaction"
    );
    assert_eq!(
        serial.commits + serial.rollbacks,
        paths as u64,
        "every transaction either commits or rolls back"
    );
    assert_eq!(
        serial.ops, sharded.ops,
        "both lane configurations drive the identical workload"
    );
    if lanes >= 4 {
        assert!(
            speedup >= 2.0,
            "lanes={lanes} must deliver >=2x modeled throughput over lanes=1 (got {speedup:.2}x)"
        );
    }
}
