//! **Figure 9** — CDF of flow completion time: the three raw switches vs
//! Hermes, for (a) all Facebook jobs, (b) short Facebook jobs, (c) Geant.
//!
//! Reproduction targets (§8.2): Hermes improves the median FCT (up to
//! 48% / 80% / 43% over the Dell / Pica8 / HP switches on Facebook); on
//! short jobs — where transfer and compute times cannot hide control
//! latency — the p95 improvement approaches the RIT-level gains (~80%).

#![forbid(unsafe_code)]

use hermes_bench::{print_cdf, print_summary, run_varys_facebook, run_varys_geant, Table};
use hermes_core::config::HermesConfig;
use hermes_netsim::metrics::Samples;
use hermes_netsim::sim::SwitchKind;
use hermes_tcam::SwitchModel;

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig9", run)
}

fn run() {
    let sc = hermes_bench::scenario();
    let scale = hermes_bench::scale();
    let facebook_jobs = sc.knob_u64("facebook_jobs", 300) as usize * scale;
    let geant_duration_s = sc.knob_f64("geant_duration_s", 60.0) * scale as f64;
    hermes_bench::report_meta("facebook_jobs", &(facebook_jobs as u64));
    hermes_bench::report_meta("geant_duration_s", &geant_duration_s);
    hermes_bench::report_meta("sim_seeds", &vec![33u64, 34]);
    println!("== Figure 9: Flow Completion Time CDFs ==\n");

    // For each raw switch model, Hermes runs *on that same model* so the
    // improvement isolates the control-plane design (as in the paper).
    let models = SwitchModel::paper_models();

    for workload in ["Facebook", "Geant"] {
        println!("--- ({workload}) ---");
        let run = |kind: SwitchKind| {
            if workload == "Facebook" {
                run_varys_facebook(kind, facebook_jobs, 33)
            } else {
                run_varys_geant(kind, geant_duration_s, 34)
            }
        };
        let mut all: Vec<(String, Samples, Samples)> = Vec::new();
        for m in &models {
            let sim = run(SwitchKind::Raw(m.clone()));
            all.push((
                m.name.clone(),
                sim.metrics.fct_s.clone(),
                sim.metrics.fct_short_s.clone(),
            ));
        }
        let hermes_sim = run(SwitchKind::Hermes(
            SwitchModel::pica8_p3290(),
            HermesConfig::default(),
        ));
        all.push((
            "Hermes".into(),
            hermes_sim.metrics.fct_s.clone(),
            hermes_sim.metrics.fct_short_s.clone(),
        ));

        let hermes_median = all.last_mut().map(|(_, s, _)| s.median()).expect("INVARIANT: the Hermes series is pushed above");
        let hermes_short_p95 = all
            .last_mut()
            .map(|(_, _, s)| s.percentile(0.95))
            .expect("INVARIANT: the Hermes series is pushed above");

        let mut t = Table::new(&[
            "Switch",
            "median FCT (s)",
            "Hermes improvement",
            "p95 short-job FCT (s)",
            "Hermes improvement (short)",
        ]);
        for (name, fct, short) in &mut all {
            if name == "Hermes" {
                t.row(&[
                    name.clone(),
                    format!("{:.3}", fct.median()),
                    "-".into(),
                    format!("{:.3}", short.percentile(0.95)),
                    "-".into(),
                ]);
                continue;
            }
            let m = fct.median();
            let sp = short.percentile(0.95);
            t.row(&[
                name.clone(),
                format!("{m:.3}"),
                format!("{:.0}%", (m - hermes_median) / m * 100.0),
                format!("{sp:.3}"),
                if sp.is_nan() || sp <= 0.0 {
                    "-".into()
                } else {
                    format!("{:.0}%", (sp - hermes_short_p95) / sp * 100.0)
                },
            ]);
        }
        t.print();
        println!();
        for (name, fct, _) in &mut all {
            print_summary(&format!("{name} FCT (s)"), fct);
        }
        println!();
        for (name, fct, _) in &mut all {
            print_cdf(&format!("{workload} all / {name}"), fct, 20);
        }
        if workload == "Facebook" {
            println!("\n-- (b) short jobs only --");
            for (name, _, short) in &mut all {
                print_cdf(&format!("Facebook short / {name}"), short, 20);
            }
        }
        println!();
    }
    println!("paper: median FCT improvements up to 48%/80%/43% (Dell/Pica8/HP) on Facebook;\nshort-job p95 improvement ~80%");
}
