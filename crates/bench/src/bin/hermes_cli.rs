//! `hermes_cli` — the operator's command-line front end to the §7 API.
//!
//! ```text
//! hermes_cli switches                      list the built-in switch models
//! hermes_cli overheads --switch pica8      Fig. 14 row for one switch
//! hermes_cli plan --switch dell --guarantee-ms 5 [--prefix 10.0.0.0/8]
//!                                          size the shadow + admitted rate
//! hermes_cli simulate --switch hp --rate 100 --count 2000 [--overlap 0.3]
//!                                          drive a MicroBench stream and
//!                                          report RIT/violations
//! ```
//!
//! Argument parsing is deliberately dependency-free (`--key value` pairs).

#![forbid(unsafe_code)]

use hermes_baselines::HermesPlane;
use hermes_bench::{drive_stream, print_summary, Table};
use hermes_core::config::{HermesConfig, RulePredicate};
use hermes_core::prelude::*;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SwitchModel};
use hermes_workloads::microbench::MicroBench;
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Parses `--key value` pairs after the subcommand.
fn parse_flags(args: &[String]) -> Result<BTreeMap<String, String>, String> {
    let mut out = BTreeMap::new();
    let mut it = args.iter();
    while let Some(k) = it.next() {
        let Some(key) = k.strip_prefix("--") else {
            return Err(format!("expected --flag, got '{k}'"));
        };
        let Some(v) = it.next() else {
            return Err(format!("--{key} needs a value"));
        };
        out.insert(key.to_string(), v.clone());
    }
    Ok(out)
}

fn model_by_name(name: &str) -> Result<SwitchModel, String> {
    match name.to_lowercase().as_str() {
        "pica8" | "pica8-p3290" | "p3290" => Ok(SwitchModel::pica8_p3290()),
        "dell" | "dell-8132f" | "8132f" => Ok(SwitchModel::dell_8132f()),
        "hp" | "hp-5406zl" | "5406zl" => Ok(SwitchModel::hp_5406zl()),
        other => Err(format!("unknown switch '{other}' (try: pica8, dell, hp)")),
    }
}

fn cmd_switches() {
    let mut t = Table::new(&["Model", "TCAM capacity", "base cost", "delete", "packing"]);
    for m in SwitchModel::paper_models() {
        t.row(&[
            m.name.clone(),
            m.capacity.to_string(),
            m.base.to_string(),
            m.delete.to_string(),
            format!("{:?}", m.placement),
        ]);
    }
    t.print();
}

fn cmd_overheads(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let model = model_by_name(flags.get("switch").ok_or("--switch required")?)?;
    let mut t = Table::new(&[
        "Guarantee (ms)",
        "Shadow entries",
        "Overhead (%)",
        "Max rate (rules/s)",
    ]);
    for g_ms in [1.0, 2.0, 5.0, 10.0, 20.0, 50.0] {
        let config = HermesConfig::with_guarantee(SimDuration::from_ms(g_ms));
        match HermesSwitch::new(model.clone(), config) {
            Ok(sw) => t.row(&[
                format!("{g_ms:.0}"),
                sw.shadow_capacity().to_string(),
                format!("{:.2}", sw.overhead_fraction() * 100.0),
                format!("{:.0}", sw.max_supported_rate()),
            ]),
            Err(e) => t.row(&[format!("{g_ms:.0}"), "-".into(), "-".into(), e.to_string()]),
        }
    }
    t.print();
    Ok(())
}

fn cmd_plan(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let model = model_by_name(flags.get("switch").ok_or("--switch required")?)?;
    let g_ms: f64 = flags
        .get("guarantee-ms")
        .ok_or("--guarantee-ms required")?
        .parse()
        .map_err(|_| "--guarantee-ms must be a number")?;
    let predicate = match flags.get("prefix") {
        Some(p) => RulePredicate::DstWithin(
            p.parse::<Ipv4Prefix>()
                .map_err(|e| format!("--prefix: {e}"))?,
        ),
        None => RulePredicate::All,
    };
    let mut api = HermesApi::new();
    api.register_switch(SwitchId(0), model.clone());
    let handle = api
        .create_tcam_qos(SwitchId(0), SimDuration::from_ms(g_ms), predicate)
        .map_err(|e| e.to_string())?;
    println!("CreateTCAMQoS on {}:", model.name);
    println!("  shadow id        {:?}", handle.shadow_id);
    println!("  TCAM overhead    {:.2}%", handle.overhead * 100.0);
    println!(
        "  max burst rate   {:.0} rules/s (Equation 2)",
        handle.max_burst_rate
    );
    Ok(())
}

fn cmd_simulate(flags: &BTreeMap<String, String>) -> Result<(), String> {
    let model = model_by_name(flags.get("switch").ok_or("--switch required")?)?;
    let rate: f64 = flags
        .get("rate")
        .map(|s| s.parse().map_err(|_| "--rate must be a number"))
        .transpose()?
        .unwrap_or(50.0);
    let count: usize = flags
        .get("count")
        .map(|s| s.parse().map_err(|_| "--count must be an integer"))
        .transpose()?
        .unwrap_or(1000);
    let overlap: f64 = flags
        .get("overlap")
        .map(|s| s.parse().map_err(|_| "--overlap must be a number"))
        .transpose()?
        .unwrap_or(0.2);
    let g_ms: f64 = flags
        .get("guarantee-ms")
        .map(|s| s.parse().map_err(|_| "--guarantee-ms must be a number"))
        .transpose()?
        .unwrap_or(5.0);

    let stream = MicroBench {
        arrival_rate: rate,
        overlap_rate: overlap,
        count,
        ..Default::default()
    }
    .generate();
    println!(
        "driving {count} inserts at {rate:.0}/s (overlap {:.0}%) into {} under a {g_ms} ms guarantee…",
        overlap * 100.0,
        model.name
    );
    let config = HermesConfig::with_guarantee(SimDuration::from_ms(g_ms));
    let plane = HermesPlane::with_config(model, config).map_err(|e| e.to_string())?;
    let mut result = drive_stream(plane, &stream, SimDuration::from_ms(25.0));
    print_summary("RIT (ms)", &mut result.rit_ms);
    println!(
        "violations: {} ({:.2}%) | migrations: {} | final occupancy: {}",
        result.violations,
        result.violation_pct(),
        result.migrations,
        result.occupancy
    );
    Ok(())
}

const USAGE: &str = "usage: hermes_cli <switches|overheads|plan|simulate> [--flag value]...
  switches                              list built-in switch models
  overheads --switch <name>             overhead vs guarantee table
  plan      --switch <name> --guarantee-ms <ms> [--prefix <cidr>]
  simulate  --switch <name> [--rate <n>] [--count <n>] [--overlap <f>] [--guarantee-ms <ms>]";

/// Strips the uniform `--out` report flag (consumed by
/// `hermes_bench::run_experiment`, which re-reads argv) so subcommand
/// parsing only sees its own flags.
fn strip_out_flag(args: Vec<String>) -> Vec<String> {
    let mut kept = Vec::with_capacity(args.len());
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--out" {
            it.next();
        } else if !a.starts_with("--out=") {
            kept.push(a);
        }
    }
    kept
}

fn main() -> ExitCode {
    let args = strip_out_flag(std::env::args().skip(1).collect());
    let Some(cmd) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    // Run the command through the shared harness: telemetry armed from the
    // environment, a `BENCH_hermes_cli.json` report on success, and a panic
    // guard — whatever goes wrong inside (bad arithmetic, a fault-injected
    // device, a bug) the operator gets a one-line error and a nonzero
    // exit, never a backtrace.
    hermes_bench::run_experiment("hermes_cli", || {
        hermes_bench::report_meta("command", &cmd.as_str());
        let result = match cmd.as_str() {
            "switches" => {
                cmd_switches();
                Ok(())
            }
            "overheads" => cmd_overheads(&flags),
            "plan" => cmd_plan(&flags),
            "simulate" => cmd_simulate(&flags),
            other => Err(format!("unknown command '{other}'\n{USAGE}")),
        };
        if let Err(e) = result {
            // hermes-lint: allow(R2, reason = "run_experiment's catch guard turns this into the CLI's one-line error and nonzero exit")
            panic!("{e}");
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_happy_path() {
        let args: Vec<String> = ["--switch", "pica8", "--rate", "100"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f.get("switch").unwrap(), "pica8");
        assert_eq!(f.get("rate").unwrap(), "100");
    }

    #[test]
    fn parse_flags_rejects_bare_values_and_dangling_flags() {
        assert!(parse_flags(&["oops".to_string()]).is_err());
        assert!(parse_flags(&["--switch".to_string()]).is_err());
    }

    #[test]
    fn strip_out_flag_removes_both_forms() {
        let args = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            strip_out_flag(args(&["simulate", "--out", "r.json", "--rate", "5"])),
            args(&["simulate", "--rate", "5"])
        );
        assert_eq!(
            strip_out_flag(args(&["--out=r.json", "switches"])),
            args(&["switches"])
        );
    }

    #[test]
    fn model_aliases() {
        assert_eq!(model_by_name("PICA8").unwrap().name, "Pica8 P-3290");
        assert_eq!(model_by_name("dell-8132f").unwrap().name, "Dell 8132F");
        assert_eq!(model_by_name("5406zl").unwrap().name, "HP 5406zl");
        assert!(model_by_name("cisco").is_err());
    }

    #[test]
    fn plan_command_runs() {
        cmd_plan(&flags(&[
            ("switch", "pica8"),
            ("guarantee-ms", "5"),
            ("prefix", "10.0.0.0/8"),
        ]))
        .unwrap();
        assert!(cmd_plan(&flags(&[("switch", "pica8")])).is_err());
        assert!(
            cmd_plan(&flags(&[
                ("switch", "pica8"),
                ("guarantee-ms", "0.0000001")
            ]))
            .is_err(),
            "infeasible guarantee must error"
        );
    }

    #[test]
    fn overheads_and_simulate_run() {
        cmd_overheads(&flags(&[("switch", "dell")])).unwrap();
        cmd_simulate(&flags(&[
            ("switch", "hp"),
            ("rate", "20"),
            ("count", "100"),
        ]))
        .unwrap();
    }
}
