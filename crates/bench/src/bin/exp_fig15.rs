//! **Figure 15** — Hermes's own overheads: CPU/memory utilization and
//! algorithm runtimes vs. rules processed.
//!
//! The paper ran its (Python) agent algorithms on an Edge-Core AS5712
//! switch CPU; we run the Rust implementation on the build machine — the
//! substitution preserves the *shapes* the paper reports:
//!
//! * (a) CPU time and memory grow linearly with the rules processed;
//! * (b) the insertion algorithm's per-rule runtime is ~flat, while the
//!   migration algorithm grows superlinearly with table size.

#![forbid(unsafe_code)]

use hermes_bench::Table;
use hermes_bgp::prelude::*;
use hermes_core::config::HermesConfig;
use hermes_core::prelude::*;
use hermes_rules::prelude::Rule;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};
use hermes_util::bench::Stopwatch;
use hermes_workloads::bgptrace::BgpTrace;

/// Builds `n` FIB insert actions from a BGP trace (only Adds, §8.7 uses
/// the BGPTrace data with the simple topology).
fn fib_inserts(n: usize) -> Vec<hermes_rules::rule::ControlAction> {
    let trace = BgpTrace {
        prefixes: n,
        duration_s: 3600.0,
        withdraw_frac: 0.0,
        base_rate: (n as f64 / 3000.0).max(10.0),
        ..Default::default()
    };
    let mut rib = Rib::new();
    let mut fib = Fib::new();
    let mut out = Vec::new();
    for u in trace.generate() {
        if out.len() >= n {
            break;
        }
        if let Some(d) = rib.process(u.update) {
            if matches!(d, FibDelta::Add { .. }) {
                out.push(fib.compile(d));
            }
        }
    }
    out
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig15", run)
}

fn run() {
    let sizes: Vec<usize> = [1000usize, 2500, 5000, 10_000, 20_000]
        .iter()
        .map(|s| s * hermes_bench::scale())
        .collect();
    hermes_bench::report_meta("sizes", &sizes.iter().map(|s| *s as u64).collect::<Vec<_>>());
    println!("== Figure 15: Hermes algorithm overheads (measured on this host) ==\n");

    println!("-- (b) processing time: insertion vs migration algorithm --");
    let mut t = Table::new(&[
        "Rules",
        "Insert algo total (ms)",
        "Insert per-rule (us)",
        "Migration total (ms)",
        "Migr. per-rule (us)",
        "Approx. mem (KB)",
    ]);
    for &n in &sizes {
        let actions = fib_inserts(n);
        // A very large idealized switch so algorithm cost, not simulated
        // TCAM latency, is what we time.
        let mut model = SwitchModel::ideal();
        model.capacity = 2 * n + 64;
        let config = HermesConfig {
            guarantee: SimDuration::from_ms(5.0),
            shadow_size: Some(n.min(model.capacity / 2)),
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        // INVARIANT: shadow_size/rate_limit above satisfy the feasibility
        // check for every size in `sizes`; a failure here is a bug in the
        // sweep itself, not an input condition.
        let mut sw = HermesSwitch::new(model, config).expect("INVARIANT: config feasible by construction");

        // Insertion algorithm: partition + gatekeeper + shadow write.
        let mut timer = Stopwatch::start();
        for a in &actions {
            // INVARIANT: the ideal model never faults and capacity covers
            // 2n rules, so submit cannot reject these inserts.
            sw.submit(a, SimTime::ZERO).expect("INVARIANT: ideal model accepts inserts");
        }
        let insert_elapsed = timer.lap();

        // Migration algorithm over the accumulated shadow.
        let shadow_rules = sw.shadow_len().max(1);
        let report = sw.migrate(SimTime::ZERO);
        let migrate_elapsed = timer.elapsed();

        // Memory: entries resident across tables × entry footprint.
        let mem_kb = (sw.main_len() + sw.shadow_len()) * std::mem::size_of::<Rule>() / 1024;

        t.row(&[
            n.to_string(),
            format!("{:.1}", insert_elapsed.as_secs_f64() * 1e3),
            format!(
                "{:.2}",
                insert_elapsed.as_secs_f64() * 1e6 / actions.len().max(1) as f64
            ),
            format!("{:.1}", migrate_elapsed.as_secs_f64() * 1e3),
            format!(
                "{:.2}",
                migrate_elapsed.as_secs_f64() * 1e6 / report.rules_migrated.max(1) as f64
            ),
            mem_kb.to_string(),
        ]);
        let _ = shadow_rules;
    }
    t.print();

    println!("\n-- (a) simulated control-plane time per migrated rule (TCAM-write cost) --");
    println!("   (the superlinear component of Fig. 15(b): migration writes into an");
    println!("    ever larger main table)");
    let mut t = Table::new(&[
        "Main-table occupancy",
        "per-rule migration cost (ms, Pica8 model)",
    ]);
    let model = SwitchModel::pica8_p3290();
    for occ in [100usize, 500, 1000, 1500, 2000] {
        t.row(&[
            occ.to_string(),
            format!("{:.2}", model.mean_update_latency(occ).as_ms()),
        ]);
    }
    t.print();

    println!("\npaper: \"runtimes for the insertion algorithms are relatively constant …\nthe migration algorithm [has] a cubic growth pattern\" — and CPU/memory grow\nlinearly with the number of rules processed.");
}
