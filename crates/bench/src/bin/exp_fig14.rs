//! **Figure 14** — ASIC overhead percentage vs. performance guarantee.
//!
//! The TCAM fraction the shadow table consumes to honour a 1 / 5 / 10 ms
//! insertion guarantee on each switch, straight from the `QoSOverheads`
//! API (§7). Paper headline: at 5 ms the overhead stays under 5%.

#![forbid(unsafe_code)]

use hermes_bench::Table;
use hermes_core::prelude::*;
use hermes_tcam::{SimDuration, SwitchModel};

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig14", run)
}

fn run() {
    println!("== Figure 14: ASIC Overhead vs Performance Guarantee ==\n");
    hermes_bench::report_meta("models", &vec!["dell_8132f", "hp_5406zl", "pica8_p3290"]);
    let mut api = HermesApi::new();
    let ids = [
        (SwitchId(0), SwitchModel::dell_8132f()),
        (SwitchId(1), SwitchModel::hp_5406zl()),
        (SwitchId(2), SwitchModel::pica8_p3290()),
    ];
    for (id, model) in &ids {
        api.register_switch(*id, model.clone());
    }

    let mut t = Table::new(&[
        "Guarantee (ms)",
        "Dell 8132F (%)",
        "HP 5406zl (%)",
        "Pica8 P3290 (%)",
    ]);
    for g_ms in [1.0f64, 5.0, 10.0] {
        let mut cells = vec![format!("{g_ms:.0}")];
        for (id, _) in &ids {
            match api.qos_overheads(*id, SimDuration::from_ms(g_ms)) {
                Ok(frac) => cells.push(format!("{:.2}", frac * 100.0)),
                Err(_) => cells.push("infeasible".into()),
            }
        }
        t.row(&cells);
    }
    t.print();

    println!("\n-- shadow sizes and admitted burst rates (Equation 2) --");
    let mut t = Table::new(&[
        "Switch",
        "Guarantee (ms)",
        "Shadow entries",
        "Overhead (%)",
        "Max rate (rules/s)",
    ]);
    for (_, model) in &ids {
        for g_ms in [1.0f64, 5.0, 10.0] {
            let config = HermesConfig::with_guarantee(SimDuration::from_ms(g_ms));
            match HermesSwitch::new(model.clone(), config) {
                Ok(sw) => t.row(&[
                    model.name.clone(),
                    format!("{g_ms:.0}"),
                    sw.shadow_capacity().to_string(),
                    format!("{:.2}", sw.overhead_fraction() * 100.0),
                    format!("{:.0}", sw.max_supported_rate()),
                ]),
                Err(e) => t.row(&[
                    model.name.clone(),
                    format!("{g_ms:.0}"),
                    "-".into(),
                    "-".into(),
                    format!("{e}"),
                ]),
            }
        }
    }
    t.print();

    println!("\npaper: \"with less than 5% overheads, Hermes provides 5 ms insertion guarantees\"");
}
