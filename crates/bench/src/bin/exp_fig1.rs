//! **Figure 1** — CDF of the increase ratio of job completion time (JCT)
//! caused by realistic TCAM control-plane latency, for short (<1 GB) and
//! long jobs: raw Pica8 P-3290 vs Hermes vs Tango vs ESPRES, each divided
//! by the same run on zero-latency switches.
//!
//! Reproduction targets (§2.2, §8.3): short jobs suffer much more than
//! long jobs (the paper reports ~1.5–2× vs ~1.05–1.25× medians on the raw
//! switch); Hermes pushes the ratio toward 1; the baselines land between.

#![forbid(unsafe_code)]

use hermes_bench::{print_cdf, run_varys_facebook, Table};
use hermes_core::config::HermesConfig;
use hermes_netsim::metrics::Samples;
use hermes_netsim::sim::SwitchKind;
use hermes_tcam::SwitchModel;
use std::collections::BTreeMap;

fn jct_map(kind: SwitchKind, jobs: usize) -> BTreeMap<usize, (f64, u64)> {
    let sim = run_varys_facebook(kind, jobs, 11);
    sim.jct_by_job.clone()
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig1", run)
}

fn run() {
    let jobs = 300 * hermes_bench::scale();
    hermes_bench::report_meta("jobs", &(jobs as u64));
    println!("== Figure 1: CDF of Increase Ratio of JCT (Facebook / fat tree) ==");
    println!("({jobs} MapReduce jobs; ratio vs zero-latency switches)\n");

    let ideal = jct_map(SwitchKind::Ideal, jobs);
    let model = SwitchModel::pica8_p3290();
    let systems: Vec<(&str, SwitchKind)> = vec![
        ("Pica8 P-3290", SwitchKind::Raw(model.clone())),
        (
            "Hermes",
            SwitchKind::Hermes(model.clone(), HermesConfig::default()),
        ),
        ("Tango", SwitchKind::Tango(model.clone())),
        ("ESPRES", SwitchKind::Espres(model)),
    ];

    let mut summary = Table::new(&[
        "System",
        "median ratio (short)",
        "p95 (short)",
        "median ratio (long)",
        "p95 (long)",
    ]);
    let mut cdfs: Vec<(String, Samples, Samples)> = Vec::new();

    for (name, kind) in systems {
        let jct = jct_map(kind, jobs);
        let mut short = Samples::new();
        let mut long = Samples::new();
        for (job, (t, bytes)) in &jct {
            let Some((t0, _)) = ideal.get(job) else {
                continue;
            };
            if *t0 <= 0.0 {
                continue;
            }
            let ratio = (t / t0).max(1.0);
            if *bytes < 1_000_000_000 {
                short.push(ratio);
            } else {
                long.push(ratio);
            }
        }
        summary.row(&[
            name.to_string(),
            format!("{:.3}", short.median()),
            format!("{:.3}", short.percentile(0.95)),
            format!("{:.3}", long.median()),
            format!("{:.3}", long.percentile(0.95)),
        ]);
        cdfs.push((name.to_string(), short, long));
    }
    summary.print();

    println!("\n-- (a) short jobs --");
    for (name, short, _) in &mut cdfs {
        print_cdf(&format!("short jobs / {name}"), short, 20);
    }
    println!("\n-- (b) long jobs --");
    for (name, _, long) in &mut cdfs {
        print_cdf(&format!("long jobs / {name}"), long, 20);
    }
    println!("\npaper: short jobs see 1.5-2x inflation on the raw switch, long jobs 1.05-1.25x;\nHermes improves the median JCT by up to ~42%");
}
