//! **§2.3 / §8.4** — Hermes in a traditional BGP router.
//!
//! Replays a BGPStream-like update trace (low baseline rate, >1000
//! updates/s bursts) through the RIB→FIB pipeline and installs the
//! surviving FIB actions on a raw switch vs Hermes with a 5 ms guarantee.
//!
//! Reproduction targets: the algorithms behave as with the SDNApp —
//! Cubic+Slack best, high slack (>80%) needed for zero violations during
//! bursts — and "the benefits of employing Hermes are significant and
//! nontrivial" on installation times.

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, CpQueue, HermesPlane, RawSwitch};
use hermes_bench::{print_summary, Table};
use hermes_bgp::prelude::*;
use hermes_core::config::{HermesConfig, MigrationTrigger};
use hermes_core::predict::{Corrector, PredictorKind};
use hermes_netsim::metrics::Samples;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};
use hermes_workloads::bgptrace::BgpTrace;

/// FIB-level control actions with timestamps, after RIB processing.
fn fib_actions(trace: &BgpTrace) -> Vec<(SimTime, ControlAction)> {
    let updates = trace.generate();
    let mut rib = Rib::new();
    let mut fib = Fib::new();
    let mut out = Vec::new();
    for u in &updates {
        if let Some(delta) = rib.process(u.update) {
            out.push((u.at, fib.compile(delta)));
        }
    }
    println!(
        "trace: {} BGP updates -> {} FIB actions ({:.0}% suppressed in RIB); peak rate {:.0} upd/s",
        updates.len(),
        out.len(),
        100.0 * (1.0 - out.len() as f64 / updates.len() as f64),
        BgpTrace::peak_rate(&updates),
    );
    out
}

struct BgpRun {
    rit: Samples,
    violations: u64,
    inserts: u64,
}

fn drive<P: ControlPlane>(plane: P, actions: &[(SimTime, ControlAction)]) -> BgpRun {
    let mut q = CpQueue::new(plane);
    let tick = SimDuration::from_ms(100.0);
    let mut next_tick = SimTime::ZERO + tick;
    let mut run = BgpRun {
        rit: Samples::new(),
        violations: 0,
        inserts: 0,
    };
    for (at, action) in actions {
        while next_tick <= *at {
            q.plane_mut().tick(next_tick);
            next_tick += tick;
        }
        let (start, outcome) = q.submit(std::slice::from_ref(action), *at);
        let op = outcome.ops.last().expect("INVARIANT: submit of one action reports at least one op");
        if action.is_insert() {
            run.rit.push((start + op.completed_at).since(*at).as_ms());
            run.inserts += 1;
            if op.violated {
                run.violations += 1;
            }
        }
    }
    run
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_bgp", run)
}

/// The `bgp-replay` scenario (`knobs.full_table = true`): preload a full
/// DFZ-sized table — one announcement per pool prefix from its home peer,
/// mirroring the trace's homing — then replay the bursty churn trace on
/// top of it. This sizes the software RIB→FIB pipeline at real table
/// scale (~900k prefixes); the TCAM-install leg is covered by the default
/// mode (churn-only) and by `exp_scale`'s 1M-rule preload, since no
/// modeled switch holds a full table.
fn run_full_table(trace: &BgpTrace) {
    let pool = trace.prefix_pool();
    let peers = trace.peers.max(1);
    let mut rib = Rib::new();
    let mut fib = Fib::new();
    let deltas = rib.preload(pool.iter().enumerate().map(|(i, &prefix)| {
        let peer = (i % peers) as u32;
        (
            prefix,
            BgpRoute {
                local_pref: 100,
                as_path_len: 1,
                med: 0,
                peer: PeerId(peer),
                next_hop_port: peer + 1,
            },
        )
    }));
    let adds = deltas.len();
    for d in deltas {
        let _ = fib.compile(d);
    }
    println!(
        "preload: {} prefixes -> {} FIB adds ({} FIB entries)",
        pool.len(),
        adds,
        fib.len()
    );
    hermes_bench::report_meta("preload_fib_adds", &(adds as u64));

    let updates = trace.generate();
    let mut churn_actions = 0u64;
    for u in &updates {
        if let Some(delta) = rib.process(u.update) {
            let _ = fib.compile(delta);
            churn_actions += 1;
        }
    }
    println!(
        "churn: {} BGP updates -> {} FIB actions ({:.0}% suppressed on the full table); peak rate {:.0} upd/s",
        updates.len(),
        churn_actions,
        100.0 * (1.0 - churn_actions as f64 / updates.len().max(1) as f64),
        BgpTrace::peak_rate(&updates),
    );
    println!("final FIB: {} entries", fib.len());
    hermes_bench::report_meta("churn_updates", &(updates.len() as u64));
    hermes_bench::report_meta("churn_fib_actions", &churn_actions);
    hermes_bench::report_meta("fib_entries", &(fib.len() as u64));
}

fn run() {
    let sc = hermes_bench::scenario();
    let scale = hermes_bench::scale();
    let duration_s = sc.knob_f64("duration_s", 60.0) * scale as f64;
    let prefixes = sc.knob_u64("prefixes", 800) as usize;
    let burst_rate = sc.knob_f64("burst_rate", 1500.0);
    let full_table = sc.knob_bool("full_table", false);
    hermes_bench::report_meta("duration_s", &duration_s);
    hermes_bench::report_meta("prefixes", &(prefixes as u64));
    let trace = BgpTrace {
        duration_s,
        prefixes,
        burst_rate,
        ..Default::default()
    };
    println!("== §8.4: Hermes under BGP (5 ms guarantee) ==\n");
    if full_table {
        run_full_table(&trace);
        return;
    }
    let actions = fib_actions(&trace);
    let model = SwitchModel::pica8_p3290();

    println!("\n-- raw switch vs Hermes --");
    let mut raw = drive(RawSwitch::new(model.clone()), &actions);
    print_summary("Raw switch RIT (ms)", &mut raw.rit);
    // Deployed configuration: admission control on. Burst traffic beyond
    // the agreed rate is serviced best-effort from the main table; rules
    // the Gate Keeper admits keep their guarantee even mid-burst.
    let hermes_cfg = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        ..Default::default()
    };
    let mut hermes = drive(
        HermesPlane::with_config(model.clone(), hermes_cfg).expect("INVARIANT: fixed experiment config is feasible for this model"),
        &actions,
    );
    print_summary("Hermes RIT (ms)", &mut hermes.rit);
    println!(
        "median improvement: {:.0}%   violations: {}/{} ({:.2}%)",
        (raw.rit.median() - hermes.rit.median()) / raw.rit.median() * 100.0,
        hermes.violations,
        hermes.inserts,
        100.0 * hermes.violations as f64 / hermes.inserts as f64
    );

    println!("\n-- slack sensitivity (Cubic Spline; admission disabled so every update");
    println!("   attempts the shadow — upper bound on burst pressure) --");
    let mut t = Table::new(&[
        "Slack (%)",
        "Violations (%)",
        "Mean RIT (ms)",
        "p99 RIT (ms)",
    ]);
    for slack in [0.0, 0.2, 0.4, 0.6, 0.8, 1.0, 1.5] {
        let cfg = HermesConfig {
            guarantee: SimDuration::from_ms(5.0),
            trigger: MigrationTrigger::Predictive {
                predictor: PredictorKind::CubicSpline,
                corrector: Corrector::Slack(slack),
            },
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut r = drive(
            HermesPlane::with_config(model.clone(), cfg).expect("INVARIANT: fixed experiment config is feasible for this model"),
            &actions,
        );
        t.row(&[
            format!("{:.0}", slack * 100.0),
            format!(
                "{:.2}",
                100.0 * r.violations as f64 / r.inserts.max(1) as f64
            ),
            format!("{:.3}", r.rit.mean()),
            format!("{:.3}", r.rit.percentile(0.99)),
        ]);
    }
    t.print();

    println!("\n-- predictor comparison under BGP --");
    let mut t = Table::new(&["Predictor", "Violations (%)", "Mean RIT (ms)"]);
    for kind in PredictorKind::all() {
        let cfg = HermesConfig {
            guarantee: SimDuration::from_ms(5.0),
            trigger: MigrationTrigger::Predictive {
                predictor: kind,
                corrector: Corrector::Slack(1.0),
            },
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let r = drive(
            HermesPlane::with_config(model.clone(), cfg).expect("INVARIANT: fixed experiment config is feasible for this model"),
            &actions,
        );
        t.row(&[
            format!("{kind:?}"),
            format!(
                "{:.2}",
                100.0 * r.violations as f64 / r.inserts.max(1) as f64
            ),
            format!("{:.3}", r.rit.mean()),
        ]);
    }
    t.print();
    println!("\npaper: \"the algorithms behave similarly with BGP as they did with the SDNApp —\nwith Cubic+Slack providing the best performance and with Hermes requiring high\nslack inflation (over 80%) to ensure that there are no performance violations\"");
}
