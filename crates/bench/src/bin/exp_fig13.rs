//! **Figure 13** — rule insertion latency vs. slack factor, at a low and a
//! high update rate across overlap rates 0–100%, on the Dell 8132F.
//!
//! Reproduction targets (§8.6): at the high rate, aggressive slack
//! (→100%) is needed to keep latency and violations down (more partitions
//! and a fuller shadow otherwise); at the low rate slack barely affects
//! the guarantee but still helps latency.
//!
//! Scaling note (see EXPERIMENTS.md): the paper drives 200 and 1000
//! updates/s. Under our empirical Dell model the *sustained* migration
//! drain rate at a few hundred installed rules is ~40–300 updates/s, so
//! 1000/s is not sustainable for any migration policy — the paper's
//! simulator evidently charges less for migration. We rescale the two
//! operating points into the sustainable envelope (50 and 200 updates/s)
//! where the slack mechanism, not raw overload, determines the outcome.

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, HermesPlane};
use hermes_bench::Table;
use hermes_core::config::{HermesConfig, MigrationTrigger};
use hermes_core::predict::{Corrector, PredictorKind};
use hermes_netsim::metrics::Samples;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};
use hermes_workloads::microbench::MicroBench;

/// Mean latency of guaranteed (shadow-routed) insertions plus the
/// violation percentage across all qualifying insertions.
fn run(rate: f64, overlap: f64, slack: f64, count: usize) -> (f64, f64) {
    let config = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        trigger: MigrationTrigger::Predictive {
            predictor: PredictorKind::CubicSpline,
            corrector: Corrector::Slack(slack),
        },
        rate_limit: Some(f64::INFINITY), // isolate the migration policy
        ..Default::default()
    };
    let stream = MicroBench {
        arrival_rate: rate,
        overlap_rate: overlap,
        count,
        ..Default::default()
    }
    .generate();
    let mut plane = HermesPlane::with_config(SwitchModel::dell_8132f(), config).expect("INVARIANT: fixed experiment config is feasible for this model");
    let tick = SimDuration::from_ms(25.0);
    let mut next_tick = SimTime::ZERO + tick;
    let mut shadow_lat = Samples::new();
    let mut violations = 0u64;
    let mut attempts = 0u64;
    for ta in &stream {
        while next_tick <= ta.at {
            plane.tick(next_tick);
            next_tick += tick;
        }
        if let ControlAction::Insert(rule) = ta.action {
            let Ok(report) = plane.switch_mut().insert(rule, ta.at) else {
                continue; // TCAM exhausted: nothing left to measure
            };
            attempts += 1;
            if report.violated() {
                violations += 1;
            }
            if matches!(report.route(), Some(hermes_core::gatekeeper::Route::Shadow)) {
                shadow_lat.push(report.latency.as_ms());
            }
        }
    }
    (
        shadow_lat.mean(),
        100.0 * violations as f64 / attempts.max(1) as f64,
    )
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig13", run_experiment_body)
}

fn run_experiment_body() {
    let count = 500 * hermes_bench::scale();
    hermes_bench::report_meta("count", &(count as u64));
    println!("== Figure 13: Guaranteed-insertion latency vs Slack Factor (Dell 8132F) ==");
    let slacks = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let overlaps = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];

    for rate in [50.0, 200.0] {
        println!("\n-- ({rate:.0} updates/s) mean guaranteed-insert latency (ms) --");
        let header: Vec<String> = std::iter::once("Slack (%)".to_string())
            .chain(overlaps.iter().map(|o| format!("{:.0}% ovl", o * 100.0)))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let mut t = Table::new(&header_refs);
        let mut tv = Table::new(&header_refs);
        for &slack in &slacks {
            let mut row = vec![format!("{:.0}", slack * 100.0)];
            let mut vrow = vec![format!("{:.0}", slack * 100.0)];
            for &ovl in &overlaps {
                let (lat, viol) = run(rate, ovl, slack, count);
                row.push(format!("{lat:.3}"));
                vrow.push(format!("{viol:.1}"));
            }
            t.row(&row);
            tv.row(&vrow);
        }
        t.print();
        println!("   violations (%):");
        tv.print();
    }
    println!("\npaper: \"a slack of 100% is required to appropriately tackle the high\ninsertion rates; for lower insertion rates less drastic slack values are\nrequired\" (rates rescaled into the empirical models' sustainable envelope)");
}
