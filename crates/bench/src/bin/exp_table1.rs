//! **Table 1** — Rule update rate vs. flow-table occupancy.
//!
//! Reproduces the paper's Table 1 by actually driving insertions through
//! the TCAM device model: fill the table to the target occupancy, then
//! measure the sustained update rate for a window of random-priority
//! insertions (delete+insert pairs, keeping occupancy constant, exactly
//! how the underlying measurement study \[42\] probes switches).
//!
//! Paper's measured values: Pica8 P-3290 @ {50:1266, 200:114, 1000:23,
//! 2000:12} updates/s; Dell 8132F @ {50:970, 250:494, 500:42, 750:29}.

#![forbid(unsafe_code)]

use hermes_bench::Table;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SwitchModel, TcamDevice};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// Workload RNG stream for this experiment (R7: streams are named per
/// subsystem so two experiments never silently draw the same sequence).
const TABLE1_STREAM_SALT: u64 = 1;

fn measured_update_rate(model: &SwitchModel, occupancy: usize, probes: usize) -> f64 {
    let mut dev = TcamDevice::monolithic(model.clone());
    let mut rng = StdRng::seed_from_u64(TABLE1_STREAM_SALT);
    // Fill to the target occupancy.
    let mut live: Vec<u64> = Vec::with_capacity(occupancy);
    for i in 0..occupancy {
        let addr = (i as u32) << 8;
        let rule = Rule::new(
            i as u64,
            Ipv4Prefix::new(addr, 24).to_key(),
            Priority(rng.gen_range(1..10_000)),
            Action::Forward(1),
        );
        dev.apply(0, &ControlAction::Insert(rule)).expect("INVARIANT: fault-free device with capacity sized for the fill");
        live.push(i as u64);
    }
    // Probe: delete a random live rule, insert a replacement at random
    // priority — occupancy stays pinned at the target.
    let mut busy = SimDuration::ZERO;
    for p in 0..probes {
        let next_id = (occupancy + p) as u64;
        let slot = rng.gen_range(0..live.len());
        let victim = RuleId(live.swap_remove(slot));
        busy += dev
            .apply(0, &ControlAction::Delete(victim))
            .expect("INVARIANT: deleting a rule installed above")
            .latency;
        let rule = Rule::new(
            next_id,
            Ipv4Prefix::new(((occupancy + p) as u32) << 8, 24).to_key(),
            Priority(rng.gen_range(1..10_000)),
            Action::Forward(1),
        );
        live.push(next_id);
        busy += dev
            .apply(0, &ControlAction::Insert(rule))
            .expect("INVARIANT: fault-free device with a free slot from the delete")
            .latency;
    }
    // The measurement study counts insert-update throughput; the paired
    // delete keeps occupancy constant (its cost is part of the probe, as
    // in the study's methodology).
    probes as f64 / busy.as_secs()
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_table1", run)
}

fn run() {
    println!("== Table 1: Rule Update Rate vs Occupancy ==\n");
    let probes = 200 * hermes_bench::scale();
    hermes_bench::report_meta("probes", &(probes as u64));

    let cases: [(&SwitchModel, &[(usize, f64)]); 2] = [
        (
            &SwitchModel::pica8_p3290(),
            &[(50, 1266.0), (200, 114.0), (1000, 23.0), (2000, 12.0)],
        ),
        (
            &SwitchModel::dell_8132f(),
            &[(50, 970.0), (250, 494.0), (500, 42.0), (750, 29.0)],
        ),
    ];

    for (model, expected) in cases {
        println!("ASIC: {} (capacity {})", model.name, model.capacity);
        let mut table = Table::new(&["Table Occupancy", "Update/s (measured)", "Update/s (paper)"]);
        for &(occ, paper) in expected {
            let rate = measured_update_rate(model, occ, probes);
            table.row(&[occ.to_string(), format!("{rate:.0}"), format!("{paper:.0}")]);
        }
        table.print();
        println!();
    }

    // The HP 5406zl occupancy table is synthesized (DESIGN.md §2); print
    // it for completeness.
    let hp = SwitchModel::hp_5406zl();
    println!(
        "ASIC: {} (synthesized points, capacity {})",
        hp.name, hp.capacity
    );
    let mut table = Table::new(&["Table Occupancy", "Update/s (measured)", "Update/s (model)"]);
    for &(occ, rate) in &hp.points.clone() {
        let measured = measured_update_rate(&hp, occ as usize, probes);
        table.row(&[
            format!("{occ:.0}"),
            format!("{measured:.0}"),
            format!("{rate:.0}"),
        ]);
    }
    table.print();
}
