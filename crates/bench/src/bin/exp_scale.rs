//! exp_scale — control-plane batching at scale (DESIGN.md §10).
//!
//! The paper's switch models top out at a few thousand entries; this
//! experiment instead drives the TCAM shift model itself at data-center
//! scale (100k × `HERMES_SCALE` rules) to measure what the batched
//! pipeline buys over per-op submission:
//!
//! 1. **per-op** — every rule submitted singly against a dense layout
//!    (the pre-batching hot path);
//! 2. **batched** — the same workload in 1024-op chunks through
//!    [`TcamTable::apply_batch`]'s coalesced shift plan;
//! 3. **gap-aware** — per-op submission against a slack layout that is
//!    periodically re-provisioned with reserved gaps, so most inserts
//!    are absorbed locally instead of rippling to the packing boundary.
//!
//! All three paths install the identical rule sequence; the experiment
//! asserts observational equivalence (same match-order entries) and that
//! batching cuts modeled shifts by at least 2× — the regression floor the
//! CI perf gate pins via `scale.*` counters.

#![forbid(unsafe_code)]

use hermes_bench::Table;
use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, TcamOp, TcamTable};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

/// Workload RNG stream for this experiment (R7: streams are named per
/// subsystem so two experiments never silently draw the same sequence).
const SCALE_STREAM_SALT: u64 = 7;
/// Batch size for the coalesced path (one "transaction" per chunk).
const CHUNK: usize = 1024;
/// Reserved free slots per block in the gap-aware layout.
const SLACK: usize = 8;
/// Inserts between layout rebuilds in the gap-aware phase.
const REBUILD_EVERY: usize = 4096;

fn workload(n: usize) -> Vec<Rule> {
    let mut rng = StdRng::seed_from_u64(SCALE_STREAM_SALT);
    (0..n)
        .map(|i| {
            Rule::new(
                i as u64,
                Ipv4Prefix::new((i as u32) << 8, 24).to_key(),
                Priority(rng.gen_range(1..1_000_000)),
                Action::Forward(1),
            )
        })
        .collect()
}

/// Phase 1: every rule submitted singly against a dense layout.
fn per_op_shifts(rules: &[Rule]) -> (u64, TcamTable) {
    let mut table = TcamTable::new(rules.len(), PlacementStrategy::PackedLow);
    let mut shifts = 0u64;
    for r in rules {
        shifts += table
            .insert(*r)
            .expect("INVARIANT: capacity sized for the workload, ids unique")
            .shifts as u64;
    }
    (shifts, table)
}

/// Phase 2: the same workload in CHUNK-sized coalesced batches.
fn batched_shifts(rules: &[Rule]) -> (u64, u64, TcamTable) {
    let mut table = TcamTable::new(rules.len(), PlacementStrategy::PackedLow);
    let (mut shifts, mut naive) = (0u64, 0u64);
    for chunk in rules.chunks(CHUNK) {
        let ops: Vec<TcamOp> = chunk.iter().map(|r| TcamOp::Insert(*r)).collect();
        let rep = table
            .apply_batch(&ops)
            .expect("INVARIANT: capacity sized for the workload, ids unique");
        shifts += rep.shifts as u64;
        naive += rep.naive_shifts as u64;
    }
    (shifts, naive, table)
}

/// Phase 3: per-op submission against a slack layout, re-provisioning
/// reserved gaps every REBUILD_EVERY inserts (rebuild moves are charged).
fn gap_aware_shifts(rules: &[Rule]) -> (u64, TcamTable) {
    // n/8 headroom funds the reserved gaps without changing the workload.
    let mut table = TcamTable::new(rules.len() + rules.len() / 8, PlacementStrategy::PackedLow);
    table.set_slack(SLACK);
    let mut shifts = 0u64;
    for (i, r) in rules.iter().enumerate() {
        if i % REBUILD_EVERY == 0 && i > 0 {
            shifts += table.rebuild_layout() as u64;
        }
        shifts += table
            .insert(*r)
            .expect("INVARIANT: capacity sized for the workload plus slack headroom")
            .shifts as u64;
    }
    (shifts, table)
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_scale", run)
}

fn run() {
    let n = hermes_bench::scenario().knob_u64("rules", 100_000) as usize
        * hermes_bench::scale();
    hermes_bench::report_meta("n", &(n as u64));
    println!("== control-plane batching at scale: {n} rules ==\n");

    let rules = workload(n);

    let (per_op, dense) = per_op_shifts(&rules);
    let (batch, batch_naive, batched) = batched_shifts(&rules);
    let (gap, gapped) = gap_aware_shifts(&rules);

    for t in [&dense, &batched, &gapped] {
        assert_eq!(t.len(), n, "every path installs the full workload");
        assert!(t.check_invariants(), "table invariants hold at scale");
    }
    assert_eq!(
        dense.entries(),
        batched.entries(),
        "batched path is observationally equivalent to per-op"
    );

    hermes_telemetry::counter("scale.rules", n as u64);
    hermes_telemetry::counter("scale.per_op_shifts", per_op);
    hermes_telemetry::counter("scale.batch_shifts", batch);
    hermes_telemetry::counter("scale.batch_naive_shifts", batch_naive);
    hermes_telemetry::counter("scale.gap_shifts", gap);

    let ratio = |a: u64, b: u64| {
        if b == 0 {
            f64::INFINITY
        } else {
            a as f64 / b as f64
        }
    };
    let mut t = Table::new(&["Path", "total shifts", "shifts/op", "vs per-op"]);
    for (name, s) in [
        ("per-op (dense)", per_op),
        ("batched (1024-op)", batch),
        ("gap-aware (per-op)", gap),
    ] {
        t.row(&[
            name.into(),
            s.to_string(),
            format!("{:.1}", s as f64 / n as f64),
            format!("{:.1}x", ratio(per_op, s)),
        ]);
    }
    t.print();
    println!(
        "\nbatch clamp: coalesced plan billed {batch} vs naive replay {batch_naive} \
         ({:.1}x reduction inside the batch path alone)",
        ratio(batch_naive, batch)
    );
    println!("gap layout: {} reserved slots left after the fill", gapped.gap_slots());

    assert!(
        ratio(per_op, batch) >= 2.0,
        "batched pipeline must cut modeled shifts at least 2x at {n} rules \
         (got {:.2}x)",
        ratio(per_op, batch)
    );
    assert!(gap < per_op, "gap-aware layout must beat the dense per-op baseline");
}
