//! **§8.6 (text)** — sensitivity to prediction algorithms.
//!
//! Runs the full predictor × corrector matrix (EWMA / Cubic Spline / ARMA
//! × Slack / Deadzone / none) on MicroBench traces and reports mean RIT,
//! tail RIT and violations.
//!
//! Reproduction targets: Cubic Spline has the lowest prediction error,
//! and Cubic Spline + Slack reduces rule installation time by 80–94% over
//! the alternatives (the paper's quoted range spans its workload sweep;
//! here the comparison is at the burstiest setting).

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, HermesPlane};
use hermes_bench::Table;
use hermes_core::config::{HermesConfig, MigrationTrigger};
use hermes_core::predict::{Corrector, PredictorKind};
use hermes_netsim::metrics::Samples;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};
use hermes_workloads::microbench::MicroBench;

/// Runs Hermes with the given predictor/corrector and reports
/// (mean guaranteed-insert latency, p99, violation %).
fn run(kind: PredictorKind, corrector: Corrector, count: usize) -> (f64, f64, f64) {
    let config = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        trigger: MigrationTrigger::Predictive {
            predictor: kind,
            corrector,
        },
        rate_limit: Some(f64::INFINITY), // isolate the prediction machinery
        ..Default::default()
    };
    // Near the sustainable envelope with heavy partitioning pressure: the
    // regime where trigger timing decides outcomes.
    let stream = MicroBench {
        arrival_rate: 40.0,
        overlap_rate: 0.6,
        count,
        ..Default::default()
    }
    .generate();
    let mut plane = HermesPlane::with_config(SwitchModel::pica8_p3290(), config).expect("INVARIANT: fixed experiment config is feasible for this model");
    let tick = SimDuration::from_ms(25.0);
    let mut next_tick = SimTime::ZERO + tick;
    let mut lat = Samples::new();
    let mut violations = 0u64;
    let mut attempts = 0u64;
    for ta in &stream {
        while next_tick <= ta.at {
            plane.tick(next_tick);
            next_tick += tick;
        }
        if let ControlAction::Insert(rule) = ta.action {
            let Ok(report) = plane.switch_mut().insert(rule, ta.at) else {
                continue;
            };
            attempts += 1;
            if report.violated() {
                violations += 1;
            }
            if matches!(report.route(), Some(hermes_core::gatekeeper::Route::Shadow)) {
                lat.push(report.latency.as_ms());
            }
        }
    }
    (
        lat.mean(),
        lat.percentile(0.99),
        100.0 * violations as f64 / attempts.max(1) as f64,
    )
}

/// One-step prediction error of each predictor on a synthetic rate series
/// (the paper's "Cubic Spline provided the lowest prediction error").
fn prediction_error(kind: PredictorKind) -> f64 {
    let mut p = kind.build();
    let mut err = 0.0;
    let mut n = 0usize;
    // Ramp + burst + decay series, the shape §5.1 worries about.
    let series: Vec<f64> = (0..200)
        .map(|t| {
            let t = t as f64;
            let base = 50.0 + 2.0 * t;
            let burst = if (80.0..100.0).contains(&t) {
                400.0
            } else {
                0.0
            };
            base + burst
        })
        .collect();
    for w in series.windows(2) {
        p.observe(w[0]);
        let pred = p.predict();
        err += (pred - w[1]).abs();
        n += 1;
    }
    err / n as f64
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_predict", run_experiment_body)
}

fn run_experiment_body() {
    let count = 800 * hermes_bench::scale();
    hermes_bench::report_meta("count", &(count as u64));
    println!("== §8.6: Prediction-algorithm sensitivity ==\n");

    println!("-- raw one-step prediction error (mean abs, synthetic bursty series) --");
    let mut t = Table::new(&["Predictor", "Mean abs error"]);
    for kind in PredictorKind::all() {
        t.row(&[
            format!("{kind:?}"),
            format!("{:.1}", prediction_error(kind)),
        ]);
    }
    t.print();

    println!("\n-- Hermes end-to-end, predictor x corrector (Pica8, 40 upd/s, 60% overlap) --");
    let mut t = Table::new(&[
        "Predictor",
        "Corrector",
        "Mean RIT (ms)",
        "p99 RIT (ms)",
        "Violations (%)",
    ]);
    let correctors = [
        Corrector::Slack(1.0),
        Corrector::Deadzone(50.0),
        Corrector::None,
    ];
    let mut best: Option<(String, f64)> = None;
    let mut results: Vec<(String, f64)> = Vec::new();
    for kind in PredictorKind::all() {
        for corrector in correctors {
            let (mean, p99, viol) = run(kind, corrector, count);
            let label = format!("{kind:?}+{corrector}");
            t.row(&[
                format!("{kind:?}"),
                corrector.to_string(),
                format!("{mean:.3}"),
                format!("{p99:.3}"),
                format!("{viol:.1}"),
            ]);
            if best.as_ref().map(|(_, b)| mean < *b).unwrap_or(true) {
                best = Some((label.clone(), mean));
            }
            results.push((label, mean));
        }
    }
    t.print();

    let (best_label, best_mean) = best.expect("INVARIANT: the sweep loop runs at least once");
    println!("\nbest configuration: {best_label} (mean RIT {best_mean:.3} ms)");
    for (label, mean) in &results {
        if *label != best_label {
            println!(
                "  vs {label:<24} RIT reduced by {:>5.1}%",
                (mean - best_mean) / mean * 100.0
            );
        }
    }
    println!("\npaper: \"the combination of Cubic Spline and Slack reduced rule installation\ntime by 80% - 94% over existing alternatives\"");
}
