//! **Crash storm** — the switch fault domain under seeded crash-class
//! faults (full TCAM wipes, partial retention, control-session loss).
//!
//! A Hermes agent ingests a batched rule stream while a `crashy` fault
//! plan periodically kills the switch; after the storm the plan is
//! disarmed and audit sweeps must drive every crash window closed. The
//! run exercises both resync modes:
//!
//! * **warm** — diff against the survivor subset, replay the minimal
//!   repair set through one batched device transaction per slice;
//! * **cold** — distrust every survivor, wipe and reinstall the whole
//!   intent snapshot in batched chunks.
//!
//! The gated counters pin the whole path: `resync.*` proves crash
//! detection/recovery ran, and `tcam.batch_*` proves the repair sets
//! rode the batched pipeline rather than per-op writes.

#![forbid(unsafe_code)]

use hermes_bench::Table;
use hermes_core::prelude::*;
use hermes_rules::prelude::*;
use hermes_tcam::{FaultPlan, SimDuration, SimTime, SwitchModel};
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};

struct Outcome {
    crashes: u64,
    resyncs: u64,
    reinstalled: u64,
    survivors: u64,
    gap_ms: f64,
    final_rules: usize,
    sweeps: u32,
}

fn storm_rule(id: u64, rng: &mut StdRng) -> Rule {
    let a = Rng::gen_range(rng, 0..200u32);
    let b = Rng::gen_range(rng, 0..250u32);
    let addr = (10u32 << 24) | (a << 16) | (b << 8);
    Rule::new(
        id,
        Ipv4Prefix::new(addr, 24).to_key(),
        Priority(1 + Rng::gen_range(rng, 0..1990u32)),
        Action::Forward(Rng::gen_range(rng, 1..48u32)),
    )
}

fn run_phase(
    mode: ResyncMode,
    count: usize,
    crash_period: u64,
    survivor_prob: f64,
    denials: u32,
    seed: u64,
) -> Outcome {
    let config = HermesConfig {
        resync: ResyncPolicy {
            mode,
            ..ResyncPolicy::default()
        },
        // Admission control off: every update attempts the shadow path, so
        // crash windows land on a busy pipeline rather than a throttled one.
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config)
        .expect("INVARIANT: fixed experiment config is feasible for this model");
    let mut plan = FaultPlan::crashy(seed);
    plan.crash_period = crash_period;
    plan.survivor_prob = survivor_prob;
    plan.max_reconnect_denials = denials;
    sw.install_fault_plan(Some(plan));

    let mut rng = StdRng::seed_from_u64(seed ^ 0x4352_4153_4853_544d);
    let mut now = SimTime::ZERO;
    let mut next_id = 0u64;
    while (next_id as usize) < count {
        // Runs of eight inserts ride the batched admission pipeline — the
        // same path the resync engine's repair sets take.
        let batch: Vec<Rule> = (0..8)
            .map(|_| {
                let id = next_id;
                next_id += 1;
                storm_rule(id, &mut rng)
            })
            .collect();
        now += SimDuration::from_ms(1.0);
        // INVARIANT: storm-phase failures are the experiment's point —
        // the fault plan injects them and the audit sweeps below repair
        // every divergence; per-op outcomes carry no signal here.
        let _ = sw.admit_batch(&batch, now);
        if next_id.is_multiple_of(64) {
            sw.tick(now);
        }
        if next_id.is_multiple_of(160) {
            // A sprinkle of deletes keeps the intent journal honest.
            for _ in 0..4 {
                let victim = Rng::gen_range(&mut rng, 0..next_id);
                now += SimDuration::from_us(200.0);
                // INVARIANT: deleting an already-lost victim during the
                // storm is expected; the audit sweeps reconcile state.
                let _ = sw.delete(RuleId(victim), now);
            }
        }
    }

    // Disarm the plan and let audit sweeps close every crash window.
    sw.install_fault_plan(None);
    let mut sweeps = 0u32;
    loop {
        now += SimDuration::from_ms(5.0);
        sw.tick(now);
        let audit = sw.audit(now);
        if audit.clean() && !sw.is_down() && sw.deferred_len() == 0 {
            break;
        }
        sweeps += 1;
        assert!(
            sweeps < 64,
            "crash storm failed to quiesce within 64 audit sweeps"
        );
    }
    assert_eq!(
        sw.intent_len(),
        sw.logical_len(),
        "intent store and logical table must agree after recovery"
    );

    let stats = sw.resync_stats();
    assert!(
        stats.resyncs_completed >= 1,
        "the storm must force at least one completed resync"
    );
    Outcome {
        crashes: stats.crashes_detected,
        resyncs: stats.resyncs_completed,
        reinstalled: stats.rules_reinstalled,
        survivors: stats.survivors_kept,
        gap_ms: stats.guarantee_gap_ns as f64 / 1e6,
        final_rules: sw.logical_len(),
        sweeps,
    }
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_crash", run_experiment_body)
}

fn run_experiment_body() {
    let count = hermes_bench::scenario().knob_u64("count", 1500) as usize * hermes_bench::scale();
    let crash_period = hermes_bench::scenario().knob_u64("crash_period", 120);
    let survivor_prob = hermes_bench::scenario().knob_f64("survivor_prob", 0.5);
    let denials = hermes_bench::scenario().knob_u64("reconnect_denials", 2) as u32;
    let seed = FaultPlan::env_seed().unwrap_or(7);
    hermes_bench::report_meta("count", &(count as u64));
    hermes_bench::report_meta("crash_period", &crash_period);

    println!("== Crash storm: wipe/partial/disconnect faults vs the resync engine ==\n");
    println!(
        "{count} updates, a crash every ~{crash_period} device ops, survivor p={survivor_prob}, \
         {denials} reconnect denial(s), fault seed {seed}\n"
    );

    let mut t = Table::new(&[
        "Mode",
        "Crashes",
        "Resyncs",
        "Reinstalled",
        "Survivors kept",
        "Gap (ms)",
        "Final rules",
        "Sweeps",
    ]);
    for (label, mode) in [("warm", ResyncMode::Warm), ("cold", ResyncMode::Cold)] {
        let o = run_phase(mode, count, crash_period, survivor_prob, denials, seed);
        t.row(&[
            label.to_string(),
            o.crashes.to_string(),
            o.resyncs.to_string(),
            o.reinstalled.to_string(),
            o.survivors.to_string(),
            format!("{:.3}", o.gap_ms),
            o.final_rules.to_string(),
            o.sweeps.to_string(),
        ]);
    }
    t.print();
    println!(
        "\nwarm mode keeps crash survivors in place and replays the minimal diff;\n\
         cold mode reinstalls the full intent snapshot — both through batched\n\
         device transactions, with the guarantee re-established after every crash"
    );
}
