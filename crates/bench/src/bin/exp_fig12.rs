//! **Figure 12** — Hermes-SIMPLE under different threshold values.
//!
//! The MicroBench configuration from §8.5: 1000 updates/s with 100%
//! overlap rate, across the three switch models.
//!
//! * (a) percentage of guarantee violations vs threshold — zero only at
//!   threshold 0% (migrate whenever the shadow is non-empty);
//! * (b) migrations per second vs threshold — at its zero-violation
//!   setting Hermes-SIMPLE migrates about twice as often as predictive
//!   Hermes with 100% slack, i.e. "double the overheads" (§8.5).

#![forbid(unsafe_code)]

use hermes_baselines::HermesPlane;
use hermes_bench::{drive_stream, Table};
use hermes_core::config::{HermesConfig, MigrationTrigger};
use hermes_core::predict::{Corrector, PredictorKind};
use hermes_tcam::{SimDuration, SwitchModel};
use hermes_workloads::microbench::MicroBench;

fn workload(count: usize) -> MicroBench {
    MicroBench {
        arrival_rate: 1000.0,
        overlap_rate: 1.0,
        count,
        ..Default::default()
    }
}

struct Outcome {
    violation_pct: f64,
    migrations_per_s: f64,
}

fn run(model: &SwitchModel, trigger: MigrationTrigger, count: usize) -> Outcome {
    let config = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        trigger,
        // Admission control off, as in the paper's stress setup: every
        // update attempts the shadow path, so the violation count directly
        // measures the migration trigger's ability to keep the shadow
        // drained.
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let stream = workload(count).generate();
    let duration_s = stream.last().expect("INVARIANT: workload generators emit at least one update").at.as_secs();
    let plane = HermesPlane::with_config(model.clone(), config).expect("INVARIANT: fixed experiment config is feasible for this model");
    // Fine-grained manager wake-ups: at 1000 updates/s a 100 ms prediction
    // interval would dominate the results with sampling noise.
    let mut result = drive_stream(plane, &stream, SimDuration::from_ms(25.0));
    // The paper's violation metric under this stress setup: the fraction
    // of insertions whose latency exceeded the promised bound — a late
    // migration forces rules into the (slow) main table, and each of those
    // broke the 5 ms promise.
    let over = 1.0 - result.exec_ms.fraction_below(5.0);
    Outcome {
        violation_pct: 100.0 * over,
        migrations_per_s: result.migrations as f64 / duration_s,
    }
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig12", run_experiment_body)
}

fn run_experiment_body() {
    let count =
        hermes_bench::scenario().knob_u64("count", 3000) as usize * hermes_bench::scale();
    hermes_bench::report_meta("count", &(count as u64));
    println!("== Figure 12: Hermes-SIMPLE vs threshold (1000 upd/s, 100% overlap) ==\n");

    let thresholds = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
    let models = SwitchModel::paper_models();

    println!("-- (a) Percentage of violations --");
    let mut ta = Table::new(&["Threshold (%)", "Dell 8132F", "Pica8 P3290", "HP 5406zl"]);
    let mut tb = Table::new(&["Threshold (%)", "Dell 8132F", "Pica8 P3290", "HP 5406zl"]);
    for &th in &thresholds {
        let mut va = vec![format!("{:.0}", th * 100.0)];
        let mut vb = vec![format!("{:.0}", th * 100.0)];
        for m in [&models[1], &models[0], &models[2]] {
            let o = run(m, MigrationTrigger::Threshold { fraction: th }, count);
            va.push(format!("{:.1}", o.violation_pct));
            vb.push(format!("{:.1}", o.migrations_per_s));
        }
        ta.row(&va);
        tb.row(&vb);
    }
    ta.print();

    println!("\n-- (b) Migration frequency (migrations/s) --");
    tb.print();

    println!("\n-- Hermes (predictive, Cubic Spline + 100% slack) for comparison --");
    let mut tc = Table::new(&["Switch", "Violations (%)", "Migrations/s"]);
    for m in [&models[1], &models[0], &models[2]] {
        let o = run(
            m,
            MigrationTrigger::Predictive {
                predictor: PredictorKind::CubicSpline,
                corrector: Corrector::Slack(1.0),
            },
            count,
        );
        tc.row(&[
            m.name.clone(),
            format!("{:.1}", o.violation_pct),
            format!("{:.1}", o.migrations_per_s),
        ]);
    }
    tc.print();
    println!("\npaper: SIMPLE needs threshold 0% for zero violations, at ~2x the migration\nfrequency of predictive Hermes (Fig. 12(b))");
}
