//! **Figure 10** — CDF of rule installation time: Tango vs ESPRES vs
//! Hermes, on the Facebook(-style) and Geant(-style) traces.
//!
//! Reproduction targets (§8.3): Hermes beats both baselines by >50% in the
//! median; the baselines vary wildly across the CDF; Tango matches or
//! outperforms ESPRES at the tail (rewriting helps on top of reordering),
//! with a larger gap on the data-center trace than on Geant.

#![forbid(unsafe_code)]

use hermes_baselines::{EspresSwitch, HermesPlane, RawSwitch, TangoSwitch};
use hermes_bench::{drive_batches, print_cdf, print_summary, te_batches, StreamResult};
use hermes_core::config::HermesConfig;
use hermes_tcam::{SimDuration, SwitchModel};

fn run_all(dc: bool, total_rules: usize) -> Vec<(String, StreamResult)> {
    let model = SwitchModel::pica8_p3290();
    // ~0.5 reconfigurations/s of 8-32 rules each per switch — the paper's
    // TE cadence spread over its 320 switches. Occupancy grows over the
    // run, which is what separates the systems.
    let batches = te_batches(dc, total_rules, 0.5, 42);
    let tick = SimDuration::from_ms(100.0);
    vec![
        (
            "Tango".into(),
            drive_batches(TangoSwitch::new(model.clone()), &batches, tick),
        ),
        (
            "ESPRES".into(),
            drive_batches(EspresSwitch::new(model.clone()), &batches, tick),
        ),
        (
            "Hermes".into(),
            drive_batches(
                HermesPlane::with_config(model.clone(), HermesConfig::default()).expect("INVARIANT: fixed experiment config is feasible for this model"),
                &batches,
                tick,
            ),
        ),
        (
            "Raw switch".into(),
            drive_batches(RawSwitch::new(model), &batches, tick),
        ),
    ]
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig10", run)
}

fn run() {
    let total = 1500 * hermes_bench::scale();
    hermes_bench::report_meta("total_rules", &(total as u64));
    println!("== Figure 10: Rule Installation Time — Hermes vs Tango vs ESPRES ==");
    println!("(per-rule installation latency, Pica8 P-3290, {total} rules)");
    for (dc, label) in [(true, "Facebook"), (false, "Geant")] {
        println!("\n--- ({label}) trace ---");
        let mut results = run_all(dc, total);
        for (name, r) in &mut results {
            print_summary(&format!("{name} RIT (ms)"), &mut r.exec_ms);
        }
        let hermes_median = results
            .iter_mut()
            .find(|(n, _)| n == "Hermes")
            .map(|(_, r)| r.exec_ms.median())
            .expect("INVARIANT: the Hermes series is pushed above");
        for (name, r) in &mut results {
            if name == "Hermes" {
                continue;
            }
            let m = r.exec_ms.median();
            println!(
                "  Hermes median vs {name:<12} {:>5.0}% better   (final occupancy {name}: {})",
                (m - hermes_median) / m * 100.0,
                r.occupancy
            );
        }
        println!();
        for (name, r) in &mut results {
            if name == "Raw switch" {
                continue;
            }
            print_cdf(&format!("{label} / {name}"), &mut r.exec_ms, 20);
        }
    }
}
