//! **Figure 8** — CDF of rule installation time under the TE workload:
//! the three raw switches vs Hermes, on the Facebook (fat-tree) and Geant
//! workloads.
//!
//! Reproduction targets (§8.2): Hermes improves the median RIT by roughly
//! 80–94% across switches, with only minor variation left in its RITs.

#![forbid(unsafe_code)]

use hermes_bench::{
    export_json, print_cdf, print_summary, run_varys_facebook, run_varys_geant, Table,
};
use hermes_core::config::HermesConfig;
use hermes_netsim::metrics::Samples;
use hermes_netsim::sim::SwitchKind;
use hermes_tcam::SwitchModel;

fn systems() -> Vec<(String, SwitchKind)> {
    let mut v: Vec<(String, SwitchKind)> = SwitchModel::paper_models()
        .into_iter()
        .map(|m| (m.name.clone(), SwitchKind::Raw(m)))
        .collect();
    v.push((
        "Hermes".into(),
        SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
    ));
    v
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig8", run)
}

fn run() {
    let scale = hermes_bench::scale();
    hermes_bench::report_meta("facebook_jobs", &((300 * scale) as u64));
    hermes_bench::report_meta("geant_duration_s", &(60.0 * scale as f64));
    hermes_bench::report_meta("sim_seeds", &vec![21u64, 22]);
    println!("== Figure 8: Rule Installation Time CDFs (TE workload) ==\n");

    for workload in ["Facebook", "Geant"] {
        println!("--- ({workload}) ---");
        let mut rits: Vec<(String, Samples)> = Vec::new();
        for (name, kind) in systems() {
            let sim = if workload == "Facebook" {
                run_varys_facebook(kind, 300 * scale, 21)
            } else {
                run_varys_geant(kind, 60.0 * scale as f64, 22)
            };
            rits.push((name, sim.metrics.rit_ms.clone()));
        }
        for (name, s) in &mut rits {
            print_summary(&format!("{name} RIT (ms)"), s);
        }
        let hermes_median = rits
            .iter_mut()
            .find(|(n, _)| n == "Hermes")
            .map(|(_, s)| s.median())
            .expect("INVARIANT: the Hermes series is pushed above");
        let mut t = Table::new(&["Baseline switch", "median RIT (ms)", "Hermes improvement"]);
        for (name, s) in &mut rits {
            if name == "Hermes" {
                continue;
            }
            let m = s.median();
            t.row(&[
                name.clone(),
                format!("{m:.3}"),
                format!("{:.0}%", (m - hermes_median) / m * 100.0),
            ]);
        }
        t.print();
        println!();
        for (name, s) in &mut rits {
            print_cdf(&format!("{workload} / {name}"), s, 20);
            export_json(
                &format!(
                    "fig8_{}_{}",
                    workload.to_lowercase(),
                    name.replace(' ', "_")
                ),
                &s.cdf(100),
            );
        }
        println!();
    }
    println!("paper: \"Hermes improves the median rule installation time by 86%, 94% and 80%\nacross all switches\"");
}
