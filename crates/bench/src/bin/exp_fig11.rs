//! **Figure 11** — time series of rule installation time for the first
//! 1000 rules: Tango vs ESPRES vs Hermes.
//!
//! Reproduction targets (§8.3): all systems start cheap; the baselines'
//! installation times grow as the table fills (diverging after a few
//! hundred rules), while Hermes stays flat under its bound.

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, CpQueue, EspresSwitch, HermesPlane, TangoSwitch};
use hermes_bench::te_batches;
use hermes_core::config::HermesConfig;
use hermes_rules::rule::ControlAction;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};

/// Per-rule execution latency series (installation time of rule #i).
fn series<P: ControlPlane>(plane: P, batches: &[(SimTime, Vec<ControlAction>)]) -> Vec<f64> {
    let mut q = CpQueue::new(plane);
    let tick = SimDuration::from_ms(100.0);
    let mut next_tick = SimTime::ZERO + tick;
    let mut out = Vec::new();
    for (at, actions) in batches {
        while next_tick <= *at {
            q.plane_mut().tick(next_tick);
            next_tick += tick;
        }
        let (_, outcome) = q.submit(actions, *at);
        let insert_ids: std::collections::BTreeSet<_> = actions
            .iter()
            .filter(|a| a.is_insert())
            .map(|a| a.rule_id())
            .collect();
        for op in &outcome.ops {
            if insert_ids.contains(&op.id) {
                out.push(op.exec.as_ms());
            }
        }
    }
    out
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_fig11", run)
}

fn run() {
    let count = 1000; // the figure plots exactly the first 1000 rules
    hermes_bench::report_meta("count", &(count as u64));
    hermes_bench::report_meta("batch_seed", &7u64);
    let model = SwitchModel::pica8_p3290();
    println!("== Figure 11: Time Series of Rule Installation Time (first {count} rules) ==");
    for (dc, label) in [(true, "Facebook"), (false, "Geant")] {
        let batches = te_batches(dc, count, 0.5, 7);
        let tango = series(TangoSwitch::new(model.clone()), &batches);
        let espres = series(EspresSwitch::new(model.clone()), &batches);
        let hermes = series(
            HermesPlane::with_config(model.clone(), HermesConfig::default()).expect("INVARIANT: fixed experiment config is feasible for this model"),
            &batches,
        );
        println!("\n--- ({label}) trace ---");
        println!(
            "{:>6} {:>12} {:>12} {:>12}",
            "#rule", "Tango(ms)", "ESPRES(ms)", "Hermes(ms)"
        );
        for i in (9..count).step_by(50) {
            // Smooth with a 10-rule window like the paper's plot raster.
            let avg = |v: &[f64]| v[i - 9..=i].iter().sum::<f64>() / 10.0;
            println!(
                "{:>6} {:>12.3} {:>12.3} {:>12.3}",
                i + 1,
                avg(&tango),
                avg(&espres),
                avg(&hermes)
            );
        }
        let last_100 = |v: &[f64]| v[count - 100..].iter().sum::<f64>() / 100.0;
        let first_100 = |v: &[f64]| v[..100].iter().sum::<f64>() / 100.0;
        println!(
            "growth first→last 100 rules: Tango {:.1}x  ESPRES {:.1}x  Hermes {:.1}x",
            last_100(&tango) / first_100(&tango).max(1e-9),
            last_100(&espres) / first_100(&espres).max(1e-9),
            last_100(&hermes) / first_100(&hermes).max(1e-9),
        );
    }
}
