//! **Ablations** — the design choices DESIGN.md §5 calls out, each toggled
//! in isolation:
//!
//! 1. migration consistency protocol: incremental make-before-break (the
//!    paper's choice) vs pause-and-swap (the rejected alternative) —
//!    measured as data-plane pause time;
//! 2. the §4.2 lowest-priority bypass: on vs off — partitions created and
//!    main-table pressure;
//! 3. hardware shadow (Hermes) vs software shadow (ShadowSwitch \[26\]) —
//!    control-plane RIT vs data-plane slow-path exposure.

#![forbid(unsafe_code)]

use hermes_baselines::{ControlPlane, HermesPlane, ShadowSwitch};
use hermes_bench::{drive_stream, Table};
use hermes_core::config::{HermesConfig, MigrationMode};
use hermes_core::prelude::HermesSwitch;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};
use hermes_workloads::microbench::MicroBench;

fn stream(count: usize, overlap: f64) -> Vec<hermes_workloads::microbench::TimedAction> {
    MicroBench {
        arrival_rate: 20.0,
        overlap_rate: overlap,
        count,
        ..Default::default()
    }
    .generate()
}

fn main() -> std::process::ExitCode {
    hermes_bench::run_experiment("exp_ablation", run)
}

fn run() {
    let count = 800 * hermes_bench::scale();
    hermes_bench::report_meta("count", &(count as u64));
    println!("== Ablations ==\n");

    // ------------------------------------------------------------------
    println!("-- (1) migration consistency: make-before-break vs pause-and-swap --");
    let mut t = Table::new(&[
        "Mode",
        "Migrations",
        "Total data-plane pause (ms)",
        "Worst single pause (ms)",
    ]);
    for mode in [MigrationMode::MakeBeforeBreak, MigrationMode::PauseAndSwap] {
        let config = HermesConfig {
            mode,
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).expect("INVARIANT: fixed experiment config is feasible for this model");
        let mut total_pause = SimDuration::ZERO;
        let mut worst_pause = SimDuration::ZERO;
        let mut migrations = 0u64;
        let mut next_tick = SimTime::ZERO;
        for ta in stream(count, 0.2) {
            while next_tick <= ta.at {
                if let Some(report) = sw.tick(next_tick) {
                    migrations += 1;
                    total_pause += report.pipeline_paused;
                    worst_pause = worst_pause.max(report.pipeline_paused);
                }
                next_tick += SimDuration::from_ms(100.0);
            }
            // INVARIANT: this ablation measures migration pauses only;
            // admission verdicts vary by design across the ablated modes
            // and are already covered by exp_table2's acceptance columns.
            let _ = sw.submit(&ta.action, ta.at);
        }
        t.row(&[
            format!("{mode:?}"),
            migrations.to_string(),
            format!("{:.1}", total_pause.as_ms()),
            format!("{:.1}", worst_pause.as_ms()),
        ]);
    }
    t.print();
    println!("(the paper rejects pipeline stalling: \"this impacts the data plane by\n slowing down data plane processing throughput\")\n");

    // ------------------------------------------------------------------
    println!("-- (2) §4.2 lowest-priority bypass: on vs off --");
    let mut t = Table::new(&[
        "Bypass",
        "Shadow inserts",
        "Main inserts",
        "Pieces written",
        "Mean RIT (ms)",
    ]);
    for bypass in [true, false] {
        // Overlap-heavy: exactly the workload where wide low-priority
        // rules fragment worst.
        let config = HermesConfig {
            low_priority_bypass: bypass,
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).expect("INVARIANT: fixed experiment config is feasible for this model");
        let mut next_tick = SimTime::ZERO;
        let mut lat_sum = 0.0;
        let mut n = 0u64;
        for ta in stream(count, 0.6) {
            while next_tick <= ta.at {
                sw.tick(next_tick);
                next_tick += SimDuration::from_ms(100.0);
            }
            if let Ok(rep) = sw.submit(&ta.action, ta.at) {
                lat_sum += rep.latency.as_ms();
                n += 1;
            }
        }
        let stats = sw.stats();
        t.row(&[
            bypass.to_string(),
            stats.shadow_inserts.to_string(),
            stats.main_inserts.to_string(),
            stats.pieces_written.to_string(),
            format!("{:.3}", lat_sum / n.max(1) as f64),
        ]);
    }
    t.print();
    println!("(bypassing the worst fragmenters keeps the shadow small and the cut count down)\n");

    // ------------------------------------------------------------------
    println!("-- (3) hardware shadow (Hermes) vs software shadow (ShadowSwitch) --");
    let mut t = Table::new(&[
        "System",
        "Median RIT (ms)",
        "p99 RIT (ms)",
        "Data-plane slow-path (% of lookups)",
    ]);
    let workload = stream(count, 0.2);
    {
        let config = HermesConfig {
            rate_limit: Some(f64::INFINITY),
            ..Default::default()
        };
        let plane = HermesPlane::with_config(SwitchModel::pica8_p3290(), config).expect("INVARIANT: fixed experiment config is feasible for this model");
        let mut r = drive_stream(plane, &workload, SimDuration::from_ms(100.0));
        t.row(&[
            "Hermes".into(),
            format!("{:.3}", r.exec_ms.median()),
            format!("{:.3}", r.exec_ms.percentile(0.99)),
            "0.0 (hardware-resident)".into(),
        ]);
    }
    {
        // ShadowSwitch needs interleaved lookups to expose the slow path:
        // drive inserts and probe after each.
        let mut ss = ShadowSwitch::new(SwitchModel::pica8_p3290());
        let mut rit = hermes_netsim::metrics::Samples::new();
        for ta in &workload {
            let out = ss.apply_batch(std::slice::from_ref(&ta.action), ta.at);
            rit.push(out.ops[0].exec.as_ms());
            if let ControlAction::Insert(rule) = ta.action {
                // Probe the just-inserted rule: freshly installed rules are
                // exactly the ones still in software.
                ss.lookup(rule.key.value());
            }
        }
        t.row(&[
            "ShadowSwitch".into(),
            format!("{:.3}", rit.median()),
            format!("{:.3}", rit.percentile(0.99)),
            format!("{:.1}", ss.slow_path_fraction() * 100.0),
        ]);
    }
    t.print();
    println!("(ShadowSwitch's near-zero control latency is paid for on the data plane:\n fresh rules forward through the switch CPU until migrated — Hermes's\n hardware shadow never leaves the fast path)");
}
