//! Micro-benchmarks for the Hermes framework itself: Algorithm 1
//! partitioning, end-to-end insertion through the agent, migration, and
//! the prediction algorithms — the software costs Fig. 15 reports.

use hermes_core::config::{HermesConfig, MigrationMode};
use hermes_core::partition::partition_new_rule;
use hermes_core::predict::PredictorKind;
use hermes_core::prelude::*;
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use hermes_tcam::{SimDuration, SimTime, SwitchModel};
use hermes_util::bench::Bench;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use std::hint::black_box;

fn random_main(n: usize, seed: u64) -> OverlapIndex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut idx = OverlapIndex::new();
    for i in 0..n {
        let len = rng.gen_range(12..=28);
        let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
        idx.insert(Rule::new(
            i as u64,
            Ipv4Prefix::new(addr, len).to_key(),
            Priority(rng.gen_range(1..1000)),
            Action::Forward(1),
        ));
    }
    idx
}

fn bench_partition() {
    let b = Bench::new("partition_new_rule");
    for n in [100usize, 1000, 5000] {
        let main = random_main(n, 5);
        // A wide low-priority rule: the worst case that actually gets cut.
        let new = Rule::new(
            u64::MAX / 2,
            Ipv4Prefix::new(0x0a000000, 10).to_key(),
            Priority(1),
            Action::Drop,
        );
        b.run(&n.to_string(), || {
            black_box(partition_new_rule(black_box(&new), &main))
        });
    }
}

fn bench_agent_insert() {
    let config = HermesConfig {
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let base = HermesSwitch::new(SwitchModel::pica8_p3290(), config).expect("feasible");
    let i = std::cell::Cell::new(0u64);
    Bench::new("hermes_agent_insert").run_batched(
        "",
        || {
            i.set(0);
            let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), base.config().clone())
                .expect("feasible");
            // Pre-populate the main table.
            for j in 0..500u64 {
                let r = Rule::new(
                    1_000_000 + j,
                    Ipv4Prefix::new((j as u32) << 12, 24).to_key(),
                    Priority(10 + (j % 100) as u32),
                    Action::Forward(1),
                );
                sw.insert(r, SimTime::ZERO).expect("preload");
            }
            sw.migrate(SimTime::ZERO);
            sw
        },
        |mut sw| {
            for k in 0..32u64 {
                i.set(i.get() + 1);
                let id = i.get();
                let r = Rule::new(
                    id,
                    Ipv4Prefix::new(0x0b000000 | ((id as u32) << 8), 24).to_key(),
                    Priority(500 + (k % 10) as u32),
                    Action::Forward(2),
                );
                sw.insert(r, SimTime::ZERO).expect("insert");
            }
            black_box(sw.shadow_len())
        },
    );
}

fn bench_migration() {
    let b = Bench::new("hermes_migration");
    for shadow_rules in [16usize, 48] {
        b.run_batched(
            &shadow_rules.to_string(),
            || {
                let config = HermesConfig {
                    rate_limit: Some(f64::INFINITY),
                    mode: MigrationMode::MakeBeforeBreak,
                    ..Default::default()
                };
                let mut sw = HermesSwitch::new(SwitchModel::pica8_p3290(), config).expect("ok");
                for j in 0..shadow_rules as u64 {
                    let r = Rule::new(
                        j,
                        Ipv4Prefix::new((j as u32) << 12, 24).to_key(),
                        Priority(10 + j as u32),
                        Action::Forward(1),
                    );
                    sw.insert(r, SimTime::ZERO).expect("fill shadow");
                }
                sw
            },
            |mut sw| black_box(sw.migrate(SimTime::ZERO)),
        );
    }
}

fn bench_predictors() {
    let b = Bench::new("predict_one_step");
    for kind in PredictorKind::all() {
        let mut p = kind.build();
        for t in 0..64 {
            p.observe(100.0 + (t as f64) * 3.0);
        }
        b.run(&format!("{kind:?}"), || {
            p.observe(black_box(150.0));
            black_box(p.predict())
        });
    }
}

fn bench_token_bucket() {
    let mut bucket = TokenBucket::new(1000.0, 100.0);
    let mut t = 0u64;
    Bench::new("token_bucket_try_take").run("", || {
        t += 1000;
        black_box(bucket.try_take(SimTime::from_nanos(t), 1.0))
    });
    let _ = SimDuration::ZERO;
}

fn main() {
    bench_partition();
    bench_agent_insert();
    bench_migration();
    bench_predictors();
    bench_token_bucket();
}
