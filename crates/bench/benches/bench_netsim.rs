//! Micro-benchmarks for the Varys simulator substrate: max-min fair
//! allocation, shortest-path sampling and a small end-to-end simulation —
//! the costs that bound experiment turnaround time.

use hermes_netsim::flow::{ActiveFlow, FlowTable};
use hermes_netsim::prelude::*;
use hermes_tcam::SimTime;
use hermes_util::bench::Bench;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use hermes_workloads::facebook::FacebookWorkload;
use std::hint::black_box;

fn flow_table_on(topo: &Topology, flows: usize, seed: u64) -> FlowTable {
    let mut rng = StdRng::seed_from_u64(seed);
    let hosts = topo.hosts();
    let mut ft = FlowTable::new();
    for i in 0..flows {
        let src = hosts[rng.gen_range(0..hosts.len())];
        let mut dst = hosts[rng.gen_range(0..hosts.len())];
        if dst == src {
            dst = hosts[(src + 1) % hosts.len()];
        }
        let path = topo
            .random_shortest_path(src, dst, None, &mut rng)
            .unwrap_or_default();
        ft.insert(ActiveFlow {
            id: i,
            job: i,
            src,
            dst,
            remaining_bytes: 1e9,
            rate_bps: 0.0,
            path,
            started: SimTime::ZERO,
            version: 0,
        });
    }
    ft
}

fn bench_max_min() {
    let b = Bench::new("max_min_allocation").samples(20);
    let topo = Topology::fat_tree(8, 10e9);
    for flows in [50usize, 200, 800] {
        let base = flow_table_on(&topo, flows, 7);
        b.run_batched(
            &flows.to_string(),
            || base.clone(),
            |mut ft| black_box(ft.allocate_max_min(&topo).len()),
        );
    }
}

fn bench_paths() {
    let topo = Topology::fat_tree(16, 40e9);
    let hosts = topo.hosts();
    let mut rng = StdRng::seed_from_u64(11);
    Bench::new("fat_tree16_random_shortest_path").run("", || {
        let s = hosts[rng.gen_range(0..hosts.len())];
        let d = hosts[rng.gen_range(0..hosts.len())];
        black_box(topo.random_shortest_path(s, d, None, &mut rng))
    });
}

fn bench_end_to_end() {
    let jobs = FacebookWorkload {
        jobs: 30,
        hosts: 16,
        duration_s: 3.0,
        seed: 5,
    }
    .generate();
    Bench::new("varys_end_to_end")
        .samples(10)
        .run("fat_tree4_30jobs_ideal", || {
            let topo = Topology::fat_tree(4, 10e9);
            let mut sim = Varys::new(topo, VarysConfig::default());
            sim.register_jobs(&jobs);
            black_box(sim.run(300.0))
        });
}

fn main() {
    bench_max_min();
    bench_paths();
    bench_end_to_end();
}
