//! Micro-benchmarks for the classifier algebra: overlap detection
//! (trie-indexed vs naive scan — the DESIGN.md ablation), difference
//! cutting and rule-set minimization.

use hermes_rules::merge::{minimize_keys, optimize_ruleset};
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use hermes_util::bench::Bench;
use hermes_util::rng::rngs::StdRng;
use hermes_util::rng::{Rng, SeedableRng};
use std::hint::black_box;

fn random_rules(n: usize, seed: u64) -> Vec<Rule> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.gen_range(8..=28);
            let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
            Rule::new(
                i as u64,
                Ipv4Prefix::new(addr, len).to_key(),
                Priority(rng.gen_range(1..1000)),
                Action::Forward(rng.gen_range(1..8)),
            )
        })
        .collect()
}

/// Ablation: trie-backed overlap query vs the naive O(n) scan Algorithm 1
/// would otherwise need.
fn bench_overlap() {
    let b = Bench::new("overlap_query");
    for n in [100usize, 1000, 5000] {
        let rules = random_rules(n, 3);
        let mut index = OverlapIndex::new();
        for r in &rules {
            index.insert(*r);
        }
        let query = rules[n / 2].key;
        b.run(&format!("trie/{n}"), || {
            black_box(index.overlapping_above(black_box(&query), Priority(500)))
        });
        b.run(&format!("naive/{n}"), || {
            let hits: Vec<&Rule> = rules
                .iter()
                .filter(|r| r.priority > Priority(500) && r.key.overlaps(&query))
                .collect();
            black_box(hits)
        });
    }
}

fn bench_difference() {
    let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
    let hole: Ipv4Prefix = "10.123.45.67/32".parse().unwrap();
    let (w, h) = (wide.to_key(), hole.to_key());
    Bench::new("ternary_difference_wide_vs_host")
        .run("", || black_box(w.difference(black_box(&h))));
}

fn bench_minimize() {
    let b = Bench::new("minimize_keys");
    for n in [8usize, 32, 128] {
        // n sibling /26 blocks that fully merge.
        let keys: Vec<TernaryKey> = (0..n)
            .map(|i| Ipv4Prefix::new(0x0a000000 | ((i as u32) << 6), 26).to_key())
            .collect();
        b.run(&n.to_string(), || black_box(minimize_keys(black_box(keys.clone()))));
    }
}

fn bench_optimize_ruleset() {
    let b = Bench::new("optimize_ruleset");
    for n in [100usize, 500] {
        let rules = random_rules(n, 9);
        b.run(&n.to_string(), || {
            black_box(optimize_ruleset(black_box(rules.clone())))
        });
    }
}

fn main() {
    bench_overlap();
    bench_difference();
    bench_minimize();
    bench_optimize_ruleset();
}
