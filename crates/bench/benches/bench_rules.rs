//! Criterion micro-benchmarks for the classifier algebra: overlap
//! detection (trie-indexed vs naive scan — the DESIGN.md ablation),
//! difference cutting and rule-set minimization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_rules::merge::{minimize_keys, optimize_ruleset};
use hermes_rules::overlap::OverlapIndex;
use hermes_rules::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_rules(n: usize, seed: u64) -> Vec<Rule> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let len = rng.gen_range(8..=28);
            let addr = 0x0a00_0000u32 | rng.gen_range(0..1u32 << 24);
            Rule::new(
                i as u64,
                Ipv4Prefix::new(addr, len).to_key(),
                Priority(rng.gen_range(1..1000)),
                Action::Forward(rng.gen_range(1..8)),
            )
        })
        .collect()
}

/// Ablation: trie-backed overlap query vs the naive O(n) scan Algorithm 1
/// would otherwise need.
fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap_query");
    for n in [100usize, 1000, 5000] {
        let rules = random_rules(n, 3);
        let mut index = OverlapIndex::new();
        for r in &rules {
            index.insert(*r);
        }
        let query = rules[n / 2].key;
        group.bench_with_input(BenchmarkId::new("trie", n), &n, |b, _| {
            b.iter(|| black_box(index.overlapping_above(black_box(&query), Priority(500))));
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| {
                let hits: Vec<&Rule> = rules
                    .iter()
                    .filter(|r| r.priority > Priority(500) && r.key.overlaps(&query))
                    .collect();
                black_box(hits)
            });
        });
    }
    group.finish();
}

fn bench_difference(c: &mut Criterion) {
    c.bench_function("ternary_difference_wide_vs_host", |b| {
        let wide: Ipv4Prefix = "10.0.0.0/8".parse().unwrap();
        let hole: Ipv4Prefix = "10.123.45.67/32".parse().unwrap();
        let (w, h) = (wide.to_key(), hole.to_key());
        b.iter(|| black_box(w.difference(black_box(&h))));
    });
}

fn bench_minimize(c: &mut Criterion) {
    let mut group = c.benchmark_group("minimize_keys");
    for n in [8usize, 32, 128] {
        // n sibling /26 blocks that fully merge.
        let keys: Vec<TernaryKey> = (0..n)
            .map(|i| Ipv4Prefix::new(0x0a000000 | ((i as u32) << 6), 26).to_key())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(minimize_keys(black_box(keys.clone()))));
        });
    }
    group.finish();
}

fn bench_optimize_ruleset(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_ruleset");
    for n in [100usize, 500] {
        let rules = random_rules(n, 9);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(optimize_ruleset(black_box(rules.clone()))));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_overlap,
    bench_difference,
    bench_minimize,
    bench_optimize_ruleset
);
criterion_main!(benches);
