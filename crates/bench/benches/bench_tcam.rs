//! Micro-benchmarks for the TCAM device model: insertion (by occupancy),
//! deletion, modification and lookup — the operations whose *simulated*
//! costs drive every experiment, benchmarked here for *real* wall-clock
//! cost to show the model itself is cheap.

use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SwitchModel, TcamDevice, TcamTable};
use hermes_util::bench::Bench;
use std::hint::black_box;

fn rule(id: u64, i: u32, prio: u32) -> Rule {
    Rule::new(
        id,
        Ipv4Prefix::new(i << 8, 24).to_key(),
        Priority(prio),
        Action::Forward(1),
    )
}

fn filled_table(n: usize) -> TcamTable {
    let mut t = TcamTable::new(n + 64, PlacementStrategy::PackedLow);
    for i in 0..n {
        t.insert(rule(i as u64, i as u32, (i % 1000) as u32 + 1))
            .expect("fill");
    }
    t
}

fn bench_insert() {
    let b = Bench::new("tcam_insert");
    for occ in [100usize, 1000, 4000] {
        let base = filled_table(occ);
        let mut i = occ as u64;
        b.run_batched(
            &occ.to_string(),
            || base.clone(),
            |mut t| {
                i += 1;
                t.insert(rule(i, i as u32, 500)).expect("insert");
                black_box(t.len())
            },
        );
    }
}

fn bench_lookup() {
    let b = Bench::new("tcam_lookup");
    for occ in [100usize, 1000, 4000] {
        let t = filled_table(occ);
        let pkt = ((occ as u32 / 2) << 8) as u128;
        b.run(&occ.to_string(), || black_box(t.peek(black_box(pkt << 96))));
    }
}

fn bench_device_pipeline() {
    let model = SwitchModel::pica8_p3290();
    let mut dev = TcamDevice::carved(
        model,
        &[
            ("shadow", 64, hermes_tcam::MissBehavior::GotoNextSlice),
            ("main", 1900, hermes_tcam::MissBehavior::ToController),
        ],
    );
    for i in 0..500u64 {
        dev.apply(
            1,
            &ControlAction::Insert(rule(i, i as u32, (i % 100) as u32 + 1)),
        )
        .expect("fill");
    }
    let pkt = (250u128 << 8) << 96;
    Bench::new("device_shadow_main_lookup").run("", || black_box(dev.peek(black_box(pkt))));
}

fn bench_perf_model() {
    let m = SwitchModel::dell_8132f();
    Bench::new("perf_insert_latency_eval")
        .run("", || black_box(m.insert_latency(black_box(500), black_box(230))));
}

fn main() {
    bench_insert();
    bench_lookup();
    bench_device_pipeline();
    bench_perf_model();
}
