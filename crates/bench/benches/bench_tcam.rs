//! Criterion micro-benchmarks for the TCAM device model: insertion (by
//! occupancy), deletion, modification and lookup — the operations whose
//! *simulated* costs drive every experiment, benchmarked here for *real*
//! wall-clock cost to show the model itself is cheap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hermes_rules::prelude::*;
use hermes_tcam::{PlacementStrategy, SwitchModel, TcamDevice, TcamTable};
use std::hint::black_box;

fn rule(id: u64, i: u32, prio: u32) -> Rule {
    Rule::new(
        id,
        Ipv4Prefix::new(i << 8, 24).to_key(),
        Priority(prio),
        Action::Forward(1),
    )
}

fn filled_table(n: usize) -> TcamTable {
    let mut t = TcamTable::new(n + 64, PlacementStrategy::PackedLow);
    for i in 0..n {
        t.insert(rule(i as u64, i as u32, (i % 1000) as u32 + 1))
            .expect("fill");
    }
    t
}

fn bench_insert(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcam_insert");
    for occ in [100usize, 1000, 4000] {
        group.bench_with_input(BenchmarkId::from_parameter(occ), &occ, |b, &occ| {
            let base = filled_table(occ);
            let mut i = occ as u64;
            b.iter_batched(
                || base.clone(),
                |mut t| {
                    i += 1;
                    t.insert(rule(i, i as u32, 500)).expect("insert");
                    black_box(t.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("tcam_lookup");
    for occ in [100usize, 1000, 4000] {
        let t = filled_table(occ);
        group.bench_with_input(BenchmarkId::from_parameter(occ), &occ, |b, _| {
            let pkt = ((occ as u32 / 2) << 8) as u128;
            b.iter(|| black_box(t.peek(black_box(pkt << 96))));
        });
    }
    group.finish();
}

fn bench_device_pipeline(c: &mut Criterion) {
    c.bench_function("device_shadow_main_lookup", |b| {
        let model = SwitchModel::pica8_p3290();
        let mut dev = TcamDevice::carved(
            model,
            &[
                ("shadow", 64, hermes_tcam::MissBehavior::GotoNextSlice),
                ("main", 1900, hermes_tcam::MissBehavior::ToController),
            ],
        );
        for i in 0..500u64 {
            dev.apply(
                1,
                &ControlAction::Insert(rule(i, i as u32, (i % 100) as u32 + 1)),
            )
            .expect("fill");
        }
        let pkt = (250u128 << 8) << 96;
        b.iter(|| black_box(dev.peek(black_box(pkt))));
    });
}

fn bench_perf_model(c: &mut Criterion) {
    c.bench_function("perf_insert_latency_eval", |b| {
        let m = SwitchModel::dell_8132f();
        b.iter(|| black_box(m.insert_latency(black_box(500), black_box(230))));
    });
}

criterion_group!(
    benches,
    bench_insert,
    bench_lookup,
    bench_device_pipeline,
    bench_perf_model
);
criterion_main!(benches);
