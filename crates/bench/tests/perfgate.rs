//! Fixture tests for `scripts/perfgate.py` — the three-tier CI
//! perf-regression gate.
//!
//! Tier 1 (counters) compares only the `counters` object of each BENCH
//! report, exact-match. These tests drive the script with synthetic
//! fixtures to pin its verdicts: identical counters pass; a drifted
//! value, a missing key, an untracked key, or a missing fresh report all
//! fail. Tier 2 (wallclock) compares the measured medians in a
//! `hermes-matrix-report/1` document against a committed tolerance-band
//! envelope: in-band medians pass, out-of-band medians fail (SLOW),
//! scenarios missing from either side fail (MISSING/UNTRACKED). Tier 3
//! (rss) applies the same envelope discipline to the per-scenario peak
//! resident set: out-of-band medians fail (HEAVY), sub-band medians are
//! noted (LEAN), and the key-set verdicts mirror the wall-clock tier.
//!
//! The script is python3 + stdlib; when the interpreter is absent the
//! tests skip (printed to stderr) rather than fail, so `cargo test`
//! stays green on bare build hosts. CI always has python3 (ci.sh uses it
//! unconditionally), so the gate itself is still exercised there.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("INVARIANT: crate lives two levels below the workspace root")
        .to_path_buf()
}

fn python3() -> Option<&'static str> {
    if Command::new("python3").arg("--version").output().is_ok() {
        Some("python3")
    } else {
        eprintln!("perfgate tests skipped: python3 not on PATH");
        None
    }
}

/// A minimal hermes-bench-report/1 document with the given counters.
fn report(counters: &[(&str, u64)]) -> String {
    let body: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!(
        "{{\"schema\": \"hermes-bench-report/1\", \"experiment\": \"x\", \
         \"counters\": {{{}}}}}",
        body.join(", ")
    )
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hermes_perfgate_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("base")).expect("INVARIANT: temp dir is writable");
        std::fs::create_dir_all(dir.join("fresh")).expect("INVARIANT: temp dir is writable");
        Fixture { dir }
    }

    fn write(&self, side: &str, file: &str, content: &str) {
        std::fs::write(self.dir.join(side).join(file), content)
            .expect("INVARIANT: temp dir is writable");
    }

    /// Runs the gate; returns (exit_code, stdout).
    fn run(&self, py: &str) -> (i32, String) {
        let root = repo_root();
        let out = Command::new(py)
            .arg(root.join("scripts/perfgate.py"))
            .arg(self.dir.join("base"))
            .arg(self.dir.join("fresh"))
            .output()
            .expect("INVARIANT: python3 probed on PATH before running fixtures");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn matching_counters_pass() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("pass");
    let doc = report(&[("tcam.batch_shifts", 42), ("tcam.batch_ops", 7)]);
    f.write("base", "BENCH_a.json", &doc);
    f.write("fresh", "BENCH_a.json", &doc);
    let (code, out) = f.run(py);
    assert_eq!(code, 0, "identical counters must pass the gate:\n{out}");
    assert!(out.contains("ok   BENCH_a.json"), "{out}");
}

#[test]
fn drifted_counter_fails_with_delta() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("drift");
    f.write("base", "BENCH_a.json", &report(&[("tcam.batch_shifts", 42)]));
    f.write("fresh", "BENCH_a.json", &report(&[("tcam.batch_shifts", 50)]));
    let (code, out) = f.run(py);
    assert_ne!(code, 0, "a drifted counter must fail the gate:\n{out}");
    assert!(out.contains("DRIFT"), "verdict column names the drift:\n{out}");
    assert!(out.contains("+8"), "delta column shows the regression:\n{out}");
}

#[test]
fn missing_and_untracked_counters_fail() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("keys");
    f.write("base", "BENCH_a.json", &report(&[("a.x", 1), ("a.gone", 2)]));
    f.write("fresh", "BENCH_a.json", &report(&[("a.x", 1), ("a.new", 3)]));
    let (code, out) = f.run(py);
    assert_ne!(code, 0, "key-set changes must fail the gate:\n{out}");
    assert!(out.contains("MISSING"), "baseline-only key flagged:\n{out}");
    assert!(out.contains("UNTRACKED"), "fresh-only key flagged:\n{out}");
}

#[test]
fn missing_fresh_report_fails() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("nofresh");
    f.write("base", "BENCH_a.json", &report(&[("a.x", 1)]));
    let (code, out) = f.run(py);
    assert_ne!(code, 0, "an unproduced report must fail the gate:\n{out}");
    assert!(out.contains("fresh report not produced"), "{out}");
}

/// A wall-clock baseline document for the tolerance-band tier.
fn wall_baseline(band: f64, floor_ms: f64, scenarios: &[(&str, f64)]) -> String {
    let body: Vec<String> = scenarios
        .iter()
        .map(|(name, ms)| format!("\"{name}\": {{\"median_ms\": {ms}}}"))
        .collect();
    format!(
        "{{\"schema\": \"hermes-wallclock-baseline/1\", \"band\": {band}, \
         \"floor_ms\": {floor_ms}, \"scenarios\": {{{}}}}}",
        body.join(", ")
    )
}

/// A full (non-canonical) hermes-matrix-report/1 document whose
/// scenarios each carry a measured wall-clock median and clean reps.
fn matrix_report(scenarios: &[(&str, f64)]) -> String {
    let body: Vec<String> = scenarios
        .iter()
        .map(|(name, ms)| {
            format!(
                "{{\"name\": \"{name}\", \"bin\": \"stub\", \"runs\": 3, \
                 \"clean_reps\": 3, \"errors\": [], \
                 \"measured\": {{\"wall_ms\": {{\"reps\": 3, \"p50\": {ms}}}}}}}"
            )
        })
        .collect();
    format!(
        "{{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"full\", \
         \"scenarios\": [{}]}}",
        body.join(", ")
    )
}

impl Fixture {
    /// Runs the wallclock tier; returns (exit_code, stdout).
    fn run_wallclock(&self, py: &str, baseline: &str, report: &str) -> (i32, String) {
        std::fs::write(self.dir.join("wall_baseline.json"), baseline)
            .expect("INVARIANT: temp dir is writable");
        std::fs::write(self.dir.join("matrix_report.json"), report)
            .expect("INVARIANT: temp dir is writable");
        let out = Command::new(py)
            .arg(repo_root().join("scripts/perfgate.py"))
            .arg("wallclock")
            .arg(self.dir.join("wall_baseline.json"))
            .arg(self.dir.join("matrix_report.json"))
            .output()
            .expect("INVARIANT: python3 probed on PATH before running fixtures");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }
}

#[test]
fn wallclock_in_band_median_passes() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("wall_pass");
    // 115ms vs a 100ms baseline: inside the 25% band.
    let (code, out) = f.run_wallclock(
        py,
        &wall_baseline(0.25, 5.0, &[("smoke-a", 100.0)]),
        &matrix_report(&[("smoke-a", 115.0)]),
    );
    assert_eq!(code, 0, "in-band median must pass:\n{out}");
    assert!(out.contains("within the wall-clock envelope"), "{out}");
}

#[test]
fn wallclock_out_of_band_median_fails() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("wall_slow");
    // 200ms vs a 100ms baseline: above 100*(1.25) + 5 = 130ms.
    let (code, out) = f.run_wallclock(
        py,
        &wall_baseline(0.25, 5.0, &[("smoke-a", 100.0)]),
        &matrix_report(&[("smoke-a", 200.0)]),
    );
    assert_eq!(code, 1, "out-of-band median must fail:\n{out}");
    assert!(out.contains("SLOW"), "verdict names the regression:\n{out}");
}

#[test]
fn wallclock_floor_absorbs_ms_scale_noise() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("wall_floor");
    // A 10ms smoke scenario doubling to 20ms is scheduler noise when the
    // absolute floor is 25ms — the band alone would flag it.
    let (code, out) = f.run_wallclock(
        py,
        &wall_baseline(0.25, 25.0, &[("smoke-tiny", 10.0)]),
        &matrix_report(&[("smoke-tiny", 20.0)]),
    );
    assert_eq!(code, 0, "floor must absorb ms-scale jitter:\n{out}");
}

#[test]
fn wallclock_missing_and_untracked_scenarios_fail() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("wall_keys");
    let (code, out) = f.run_wallclock(
        py,
        &wall_baseline(0.25, 5.0, &[("tracked-gone", 100.0)]),
        &matrix_report(&[("brand-new", 50.0)]),
    );
    assert_eq!(code, 1, "both scenario-set drifts must fail:\n{out}");
    assert!(out.contains("MISSING"), "baseline-only scenario flagged:\n{out}");
    assert!(out.contains("UNTRACKED"), "report-only scenario flagged:\n{out}");
}

#[test]
fn wallclock_broken_reps_fail() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("wall_broken");
    let report = "{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"full\", \
                  \"scenarios\": [{\"name\": \"smoke-a\", \"runs\": 3, \"clean_reps\": 1, \
                  \"measured\": {\"wall_ms\": {\"p50\": 100.0}}}]}";
    let (code, out) = f.run_wallclock(
        py,
        &wall_baseline(0.25, 5.0, &[("smoke-a", 100.0)]),
        report,
    );
    assert_eq!(code, 1, "failed repetitions must fail the gate:\n{out}");
    assert!(out.contains("BROKEN"), "{out}");
}

#[test]
fn wallclock_rejects_canonical_reports() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("wall_canon");
    let report = "{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"canonical\", \
                  \"scenarios\": []}";
    let (code, _) = f.run_wallclock(py, &wall_baseline(0.25, 5.0, &[]), report);
    assert_eq!(code, 2, "canonical summaries carry no measured section");
}

/// A peak-RSS baseline document for the tolerance-band tier.
fn rss_baseline(band: f64, floor_bytes: u64, scenarios: &[(&str, u64)]) -> String {
    let body: Vec<String> = scenarios
        .iter()
        .map(|(name, bytes)| format!("\"{name}\": {{\"median_bytes\": {bytes}}}"))
        .collect();
    format!(
        "{{\"schema\": \"hermes-rss-baseline/1\", \"band\": {band}, \
         \"floor_bytes\": {floor_bytes}, \"scenarios\": {{{}}}}}",
        body.join(", ")
    )
}

/// A full hermes-matrix-report/1 document whose scenarios each carry a
/// measured peak-RSS median and clean reps.
fn matrix_report_rss(scenarios: &[(&str, u64)]) -> String {
    let body: Vec<String> = scenarios
        .iter()
        .map(|(name, bytes)| {
            format!(
                "{{\"name\": \"{name}\", \"bin\": \"stub\", \"runs\": 3, \
                 \"clean_reps\": 3, \"errors\": [], \
                 \"measured\": {{\"max_rss_bytes\": {{\"reps\": 3, \"p50\": {bytes}}}}}}}"
            )
        })
        .collect();
    format!(
        "{{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"full\", \
         \"scenarios\": [{}]}}",
        body.join(", ")
    )
}

impl Fixture {
    /// Runs the rss tier; returns (exit_code, stdout).
    fn run_rss(&self, py: &str, baseline: &str, report: &str) -> (i32, String) {
        std::fs::write(self.dir.join("rss_baseline.json"), baseline)
            .expect("INVARIANT: temp dir is writable");
        std::fs::write(self.dir.join("matrix_report.json"), report)
            .expect("INVARIANT: temp dir is writable");
        let out = Command::new(py)
            .arg(repo_root().join("scripts/perfgate.py"))
            .arg("rss")
            .arg(self.dir.join("rss_baseline.json"))
            .arg(self.dir.join("matrix_report.json"))
            .output()
            .expect("INVARIANT: python3 probed on PATH before running fixtures");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }
}

const MIB: u64 = 1 << 20;

#[test]
fn rss_in_band_median_passes() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("rss_pass");
    // 110 MiB vs a 100 MiB baseline: inside the 35% band.
    let (code, out) = f.run_rss(
        py,
        &rss_baseline(0.35, 4 * MIB, &[("smoke-a", 100 * MIB)]),
        &matrix_report_rss(&[("smoke-a", 110 * MIB)]),
    );
    assert_eq!(code, 0, "in-band RSS median must pass:\n{out}");
    assert!(out.contains("within the peak-RSS envelope"), "{out}");
}

#[test]
fn rss_out_of_band_median_fails_heavy() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("rss_heavy");
    // 200 MiB vs a 100 MiB baseline: above 100*(1.35) + 4 = 139 MiB.
    let (code, out) = f.run_rss(
        py,
        &rss_baseline(0.35, 4 * MIB, &[("smoke-a", 100 * MIB)]),
        &matrix_report_rss(&[("smoke-a", 200 * MIB)]),
    );
    assert_eq!(code, 1, "out-of-band RSS median must fail:\n{out}");
    assert!(out.contains("HEAVY"), "verdict names the regression:\n{out}");
}

#[test]
fn rss_floor_absorbs_allocator_noise() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("rss_floor");
    // A 8 MiB smoke binary doubling to 16 MiB is allocator/page-cache
    // jitter when the absolute floor is 16 MiB — the band alone would
    // flag it.
    let (code, out) = f.run_rss(
        py,
        &rss_baseline(0.35, 16 * MIB, &[("smoke-tiny", 8 * MIB)]),
        &matrix_report_rss(&[("smoke-tiny", 16 * MIB)]),
    );
    assert_eq!(code, 0, "floor must absorb MiB-scale jitter:\n{out}");
}

#[test]
fn rss_missing_and_untracked_scenarios_fail() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("rss_keys");
    let (code, out) = f.run_rss(
        py,
        &rss_baseline(0.35, 4 * MIB, &[("tracked-gone", 100 * MIB)]),
        &matrix_report_rss(&[("brand-new", 50 * MIB)]),
    );
    assert_eq!(code, 1, "both scenario-set drifts must fail:\n{out}");
    assert!(out.contains("MISSING"), "baseline-only scenario flagged:\n{out}");
    assert!(out.contains("UNTRACKED"), "report-only scenario flagged:\n{out}");
}

#[test]
fn rss_broken_reps_fail() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("rss_broken");
    let report = "{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"full\", \
                  \"scenarios\": [{\"name\": \"smoke-a\", \"runs\": 3, \"clean_reps\": 2, \
                  \"measured\": {\"max_rss_bytes\": {\"p50\": 1000000}}}]}";
    let (code, out) = f.run_rss(
        py,
        &rss_baseline(0.35, 4 * MIB, &[("smoke-a", MIB)]),
        report,
    );
    assert_eq!(code, 1, "failed repetitions must fail the gate:\n{out}");
    assert!(out.contains("BROKEN"), "{out}");
}

#[test]
fn committed_rss_baseline_is_wellformed() {
    let Some(py) = python3() else { return };
    // The committed envelope must parse and track the gated scenarios;
    // an empty fresh report against it must flag every tracked scenario
    // as MISSING (proving they are all tracked).
    let f = Fixture::new("rss_committed");
    let baseline = std::fs::read_to_string(repo_root().join("bench_baselines/rss.json"))
        .expect("committed peak-RSS baseline exists");
    let empty = "{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"full\", \
                 \"scenarios\": []}";
    let (code, out) = f.run_rss(py, &baseline, empty);
    assert_eq!(code, 1, "the tracked gated scenarios must be MISSING:\n{out}");
    assert!(out.contains("smoke-fleet"), "{out}");
    assert!(out.contains("chaos-suite"), "{out}");
}

#[test]
fn counters_subcommand_matches_legacy_form() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("subcmd");
    let doc = report(&[("a.x", 1)]);
    f.write("base", "BENCH_a.json", &doc);
    f.write("fresh", "BENCH_a.json", &doc);
    let out = Command::new(py)
        .arg(repo_root().join("scripts/perfgate.py"))
        .arg("counters")
        .arg(f.dir.join("base"))
        .arg(f.dir.join("fresh"))
        .output()
        .expect("INVARIANT: python3 probed on PATH before running fixtures");
    assert!(
        out.status.success(),
        "explicit counters subcommand must behave like the legacy form:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn committed_wallclock_baseline_is_wellformed() {
    let Some(py) = python3() else { return };
    // The committed envelope must parse and cover exactly the smoke
    // scenarios ci.sh runs; an empty fresh report against it must flag
    // every tracked scenario as MISSING (proving they are all tracked).
    let f = Fixture::new("wall_committed");
    let baseline = std::fs::read_to_string(repo_root().join("bench_baselines/wallclock.json"))
        .expect("committed wall-clock baseline exists");
    let empty = "{\"schema\": \"hermes-matrix-report/1\", \"kind\": \"full\", \
                 \"scenarios\": []}";
    let (code, out) = f.run_wallclock(py, &baseline, empty);
    assert_eq!(code, 1, "two tracked smoke scenarios must be MISSING:\n{out}");
    assert!(out.contains("smoke-tcam"), "{out}");
    assert!(out.contains("smoke-chaos"), "{out}");
}

#[test]
fn committed_baselines_are_wellformed() {
    let Some(py) = python3() else { return };
    // The real committed baselines gate CI; running them against
    // themselves must pass (guards against hand-edited/corrupt files).
    let root = repo_root();
    let baselines = root.join("bench_baselines");
    let out = Command::new(py)
        .arg(root.join("scripts/perfgate.py"))
        .arg(&baselines)
        .arg(&baselines)
        .output()
        .expect("INVARIANT: python3 probed on PATH before running fixtures");
    assert!(
        out.status.success(),
        "committed baselines must self-compare clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
