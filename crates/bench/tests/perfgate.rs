//! Fixture tests for `scripts/perfgate.py` — the CI perf-regression gate.
//!
//! The gate compares only the `counters` object of each BENCH report,
//! exact-match. These tests drive the script with synthetic fixtures to
//! pin its verdicts: identical counters pass; a drifted value, a missing
//! key, an untracked key, or a missing fresh report all fail.
//!
//! The script is python3 + stdlib; when the interpreter is absent the
//! tests skip (printed to stderr) rather than fail, so `cargo test`
//! stays green on bare build hosts. CI always has python3 (ci.sh uses it
//! unconditionally), so the gate itself is still exercised there.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    // crates/bench -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("INVARIANT: crate lives two levels below the workspace root")
        .to_path_buf()
}

fn python3() -> Option<&'static str> {
    if Command::new("python3").arg("--version").output().is_ok() {
        Some("python3")
    } else {
        eprintln!("perfgate tests skipped: python3 not on PATH");
        None
    }
}

/// A minimal hermes-bench-report/1 document with the given counters.
fn report(counters: &[(&str, u64)]) -> String {
    let body: Vec<String> = counters
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v}"))
        .collect();
    format!(
        "{{\"schema\": \"hermes-bench-report/1\", \"experiment\": \"x\", \
         \"counters\": {{{}}}}}",
        body.join(", ")
    )
}

struct Fixture {
    dir: PathBuf,
}

impl Fixture {
    fn new(name: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("hermes_perfgate_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("base")).expect("INVARIANT: temp dir is writable");
        std::fs::create_dir_all(dir.join("fresh")).expect("INVARIANT: temp dir is writable");
        Fixture { dir }
    }

    fn write(&self, side: &str, file: &str, content: &str) {
        std::fs::write(self.dir.join(side).join(file), content)
            .expect("INVARIANT: temp dir is writable");
    }

    /// Runs the gate; returns (exit_code, stdout).
    fn run(&self, py: &str) -> (i32, String) {
        let root = repo_root();
        let out = Command::new(py)
            .arg(root.join("scripts/perfgate.py"))
            .arg(self.dir.join("base"))
            .arg(self.dir.join("fresh"))
            .output()
            .expect("INVARIANT: python3 probed on PATH before running fixtures");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
        )
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn matching_counters_pass() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("pass");
    let doc = report(&[("tcam.batch_shifts", 42), ("tcam.batch_ops", 7)]);
    f.write("base", "BENCH_a.json", &doc);
    f.write("fresh", "BENCH_a.json", &doc);
    let (code, out) = f.run(py);
    assert_eq!(code, 0, "identical counters must pass the gate:\n{out}");
    assert!(out.contains("ok   BENCH_a.json"), "{out}");
}

#[test]
fn drifted_counter_fails_with_delta() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("drift");
    f.write("base", "BENCH_a.json", &report(&[("tcam.batch_shifts", 42)]));
    f.write("fresh", "BENCH_a.json", &report(&[("tcam.batch_shifts", 50)]));
    let (code, out) = f.run(py);
    assert_ne!(code, 0, "a drifted counter must fail the gate:\n{out}");
    assert!(out.contains("DRIFT"), "verdict column names the drift:\n{out}");
    assert!(out.contains("+8"), "delta column shows the regression:\n{out}");
}

#[test]
fn missing_and_untracked_counters_fail() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("keys");
    f.write("base", "BENCH_a.json", &report(&[("a.x", 1), ("a.gone", 2)]));
    f.write("fresh", "BENCH_a.json", &report(&[("a.x", 1), ("a.new", 3)]));
    let (code, out) = f.run(py);
    assert_ne!(code, 0, "key-set changes must fail the gate:\n{out}");
    assert!(out.contains("MISSING"), "baseline-only key flagged:\n{out}");
    assert!(out.contains("UNTRACKED"), "fresh-only key flagged:\n{out}");
}

#[test]
fn missing_fresh_report_fails() {
    let Some(py) = python3() else { return };
    let f = Fixture::new("nofresh");
    f.write("base", "BENCH_a.json", &report(&[("a.x", 1)]));
    let (code, out) = f.run(py);
    assert_ne!(code, 0, "an unproduced report must fail the gate:\n{out}");
    assert!(out.contains("fresh report not produced"), "{out}");
}

#[test]
fn committed_baselines_are_wellformed() {
    let Some(py) = python3() else { return };
    // The real committed baselines gate CI; running them against
    // themselves must pass (guards against hand-edited/corrupt files).
    let root = repo_root();
    let baselines = root.join("bench_baselines");
    let out = Command::new(py)
        .arg(root.join("scripts/perfgate.py"))
        .arg(&baselines)
        .arg(&baselines)
        .output()
        .expect("INVARIANT: python3 probed on PATH before running fixtures");
    assert!(
        out.status.success(),
        "committed baselines must self-compare clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}
