//! Quickstart: put Hermes in front of a switch and watch insertion
//! latency become boring.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use hermes::core::prelude::*;
use hermes::rules::prelude::*;
use hermes::tcam::{SimDuration, SimTime, SwitchModel, TcamDevice};

fn main() {
    // A Pica8 P-3290 — Table 1 of the paper: at 1000 installed rules it
    // manages ~23 rule updates per second (~43 ms each).
    let model = SwitchModel::pica8_p3290();

    // ---------------------------------------------------------------
    // Without Hermes: insertion latency grows with table occupancy.
    // ---------------------------------------------------------------
    let mut raw = TcamDevice::monolithic(model.clone());
    let mut worst_raw = SimDuration::ZERO;
    for i in 0..1000u64 {
        let rule = Rule::new(
            i,
            Ipv4Prefix::new((i as u32) << 12, 24).to_key(),
            Priority(1 + (i % 500) as u32),
            Action::Forward((i % 48) as u32),
        );
        let rep = raw.apply(0, &ControlAction::Insert(rule)).expect("insert");
        worst_raw = worst_raw.max(rep.latency);
    }
    println!("raw switch: worst insertion over 1000 rules = {worst_raw}");

    // ---------------------------------------------------------------
    // With Hermes: ask for a 5 ms guarantee.
    // ---------------------------------------------------------------
    let config = HermesConfig::with_guarantee(SimDuration::from_ms(5.0));
    let mut switch = HermesSwitch::new(model, config).expect("guarantee feasible");
    println!(
        "hermes: shadow table = {} entries ({:.1}% of the TCAM), admits up to {:.0} rules/s",
        switch.shadow_capacity(),
        switch.overhead_fraction() * 100.0,
        switch.max_supported_rate(),
    );

    let mut now = SimTime::ZERO;
    let mut worst_guaranteed = SimDuration::ZERO;
    let mut diverted = 0u64;
    for i in 0..1000u64 {
        let rule = Rule::new(
            i,
            Ipv4Prefix::new((i as u32) << 12, 24).to_key(),
            Priority(1 + (i % 500) as u32),
            Action::Forward((i % 48) as u32),
        );
        let report = switch.insert(rule, now).expect("insert");
        match report.route().expect("insert report") {
            Route::Shadow | Route::Redundant => {
                worst_guaranteed = worst_guaranteed.max(report.latency)
            }
            // Over the admitted rate (or bypass optimizations): serviced
            // best-effort from the main table.
            _ => diverted += 1,
        }
        now += SimDuration::from_ms(25.0); // 40 rules/s
                                           // The Rule Manager runs in the background, migrating rules from
                                           // the shadow to the main table before the shadow fills.
        switch.tick(now);
    }
    let stats = switch.stats();
    println!(
        "hermes: worst *guaranteed* insertion over 1000 rules = {worst_guaranteed} \
         (violations: {}, migrations: {}, best-effort diverted: {diverted})",
        stats.violations, stats.migrations,
    );

    // ---------------------------------------------------------------
    // Lookups behave exactly like one logical table.
    // ---------------------------------------------------------------
    let pkt = PacketHeader::to_dst(5 << 12).to_word();
    let result = switch.lookup(pkt);
    println!("lookup 0.0.80.0 -> {:?}", result.action());
}
