//! A traditional BGP router with Hermes under the hood (§2.3 / §8.4).
//!
//! BGP updates stream into the RIB; only best-path changes reach the FIB;
//! the FIB's TCAM actions go through Hermes, which keeps insertion latency
//! bounded even through >1000 update/s bursts.
//!
//! ```sh
//! cargo run --release --example bgp_router
//! ```

use hermes::baselines::{ControlPlane, CpQueue, HermesPlane, RawSwitch};
use hermes::bgp::prelude::*;
use hermes::core::config::HermesConfig;
use hermes::netsim::metrics::Samples;
use hermes::rules::prelude::ControlAction;
use hermes::tcam::{SimDuration, SimTime, SwitchModel};
use hermes::workloads::bgptrace::BgpTrace;

fn drive<P: ControlPlane>(plane: P, actions: &[(SimTime, ControlAction)]) -> (Samples, u64) {
    let mut q = CpQueue::new(plane);
    let mut rit = Samples::new();
    let mut violations = 0;
    let tick = SimDuration::from_ms(100.0);
    let mut next_tick = SimTime::ZERO + tick;
    for (at, action) in actions {
        while next_tick <= *at {
            q.plane_mut().tick(next_tick);
            next_tick += tick;
        }
        let (start, outcome) = q.submit(std::slice::from_ref(action), *at);
        if action.is_insert() {
            let op = outcome.ops.last().expect("one op");
            rit.push((start + op.completed_at).since(*at).as_ms());
            if op.violated {
                violations += 1;
            }
        }
    }
    (rit, violations)
}

fn main() {
    // A synthetic BGPStream-like feed: calm baseline, violent bursts.
    let trace = BgpTrace {
        duration_s: 60.0,
        prefixes: 600,
        ..Default::default()
    };
    let updates = trace.generate();
    println!(
        "BGP feed: {} updates over {:.0}s, peak {:.0} updates/s",
        updates.len(),
        trace.duration_s,
        BgpTrace::peak_rate(&updates)
    );

    // RIB → FIB: most updates never reach the TCAM.
    let mut rib = Rib::new();
    let mut fib = Fib::new();
    let mut actions = Vec::new();
    for u in &updates {
        if let Some(delta) = rib.process(u.update) {
            actions.push((u.at, fib.compile(delta)));
        }
    }
    println!(
        "RIB suppressed {:.0}% of updates; {} FIB actions reach the TCAM\n",
        100.0 * (1.0 - actions.len() as f64 / updates.len() as f64),
        actions.len()
    );

    let model = SwitchModel::pica8_p3290();
    let (mut raw_rit, _) = drive(RawSwitch::new(model.clone()), &actions);
    println!(
        "raw router:    RIT median {:>7.3}ms  p99 {:>8.3}ms  max {:>8.3}ms",
        raw_rit.median(),
        raw_rit.percentile(0.99),
        raw_rit.max()
    );

    let config = HermesConfig {
        guarantee: SimDuration::from_ms(5.0),
        rate_limit: Some(f64::INFINITY),
        ..Default::default()
    };
    let hermes = HermesPlane::with_config(model, config).expect("feasible");
    let (mut hermes_rit, violations) = drive(hermes, &actions);
    println!(
        "hermes router: RIT median {:>7.3}ms  p99 {:>8.3}ms  max {:>8.3}ms  ({} violations)",
        hermes_rit.median(),
        hermes_rit.percentile(0.99),
        hermes_rit.max(),
        violations
    );
    println!(
        "\nmedian improvement: {:.0}%",
        (raw_rit.median() - hermes_rit.median()) / raw_rit.median() * 100.0
    );
}
