//! Operator workflow with the §7 management API: explore the
//! performance/overhead trade-off, then configure guarantees.
//!
//! ```sh
//! cargo run --example qos_planning
//! ```

use hermes::core::prelude::*;
use hermes::rules::prelude::*;
use hermes::tcam::{SimDuration, SimTime, SwitchModel};

fn main() {
    let mut api = HermesApi::new();
    api.register_switch(SwitchId(1), SwitchModel::pica8_p3290());
    api.register_switch(SwitchId(2), SwitchModel::dell_8132f());
    api.register_switch(SwitchId(3), SwitchModel::hp_5406zl());

    // 1. Explore: what would each guarantee cost? (QoSOverheads)
    println!("TCAM overhead by guarantee (QoSOverheads):");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "guarantee", "Pica8", "Dell", "HP"
    );
    for ms in [1.0, 2.0, 5.0, 10.0, 20.0] {
        let g = SimDuration::from_ms(ms);
        let cell = |id: u32| match api.qos_overheads(SwitchId(id), g) {
            Ok(f) => format!("{:.2}%", f * 100.0),
            Err(_) => "infeasible".into(),
        };
        println!(
            "{:>8.0}ms {:>14} {:>14} {:>14}",
            ms,
            cell(1),
            cell(2),
            cell(3)
        );
    }

    // 2. Configure: 5 ms on the Pica8, but only for rules inside the
    //    data-center prefix (the match-predicate argument).
    let predicate = RulePredicate::DstWithin("10.0.0.0/8".parse().unwrap());
    let handle = api
        .create_tcam_qos(SwitchId(1), SimDuration::from_ms(5.0), predicate)
        .expect("feasible");
    println!(
        "\nCreateTCAMQoS -> shadow {:?}: max burst rate {:.0} rules/s, overhead {:.2}%",
        handle.shadow_id,
        handle.max_burst_rate,
        handle.overhead * 100.0
    );

    // 3. Use it: guaranteed rules ride the shadow table, others don't.
    let agent = api.agent_mut(SwitchId(1)).expect("configured");
    let dc_rule = Rule::new(
        1,
        "10.1.2.0/24".parse::<Ipv4Prefix>().unwrap().to_key(),
        Priority(100),
        Action::Forward(4),
    );
    let other_rule = Rule::new(
        2,
        "93.184.216.0/24".parse::<Ipv4Prefix>().unwrap().to_key(),
        Priority(100),
        Action::Forward(9),
    );
    let r1 = agent.insert(dc_rule, SimTime::ZERO).expect("insert");
    let r2 = agent.insert(other_rule, SimTime::ZERO).expect("insert");
    println!(
        "10.1.2.0/24      -> route {:?}, latency {}",
        r1.route().unwrap(),
        r1.latency
    );
    println!(
        "93.184.216.0/24  -> route {:?}, latency {}",
        r2.route().unwrap(),
        r2.latency
    );

    // 4. Re-target the guarantee at runtime (ModQoSConfig).
    let h2 = api
        .mod_qos_config(handle.shadow_id, SimDuration::from_ms(10.0))
        .expect("resize");
    println!(
        "\nModQoSConfig(10ms) -> overhead now {:.2}%, burst {:.0} rules/s",
        h2.overhead * 100.0,
        h2.max_burst_rate
    );

    // 5. Tear down.
    api.delete_qos(handle.shadow_id).expect("delete");
    println!("DeleteQoS -> switch back to unmanaged");
}
