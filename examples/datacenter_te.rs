//! Data-center traffic engineering: the paper's motivating scenario.
//!
//! A fat-tree data center runs a proactive TE application that keeps
//! rerouting the biggest flows off congested links. Every reroute installs
//! rules along the new path, and the flow only moves once the *slowest*
//! switch finishes installing — so TCAM insertion latency lands directly
//! on job completion times. Compare a raw Pica8 against Hermes.
//!
//! ```sh
//! cargo run --release --example datacenter_te
//! ```

use hermes::core::config::HermesConfig;
use hermes::netsim::prelude::*;
use hermes::tcam::SwitchModel;
use hermes::workloads::facebook::FacebookWorkload;

fn run(kind: SwitchKind, label: &str) {
    let topo = Topology::fat_tree(8, 10e9);
    let hosts = topo.hosts().len();
    let config = VarysConfig {
        switch: kind,
        congestion_threshold: 0.7,
        base_rules_per_switch: 250,
        seed: 4,
        ..Default::default()
    };
    let mut sim = Varys::new(topo, config);
    let jobs = FacebookWorkload {
        jobs: 80,
        hosts,
        duration_s: 40.0,
        seed: 12,
    }
    .generate();
    let n_short = jobs.iter().filter(|j| j.is_short()).count();
    sim.register_jobs(&jobs);
    sim.run(2000.0);

    let m = &mut sim.metrics;
    println!("--- {label} ---");
    println!(
        "  jobs: {} ({} short) | flows: {} | rules installed: {} | violations: {}",
        m.jct_s.len(),
        n_short,
        m.fct_s.len(),
        m.installs,
        m.violations
    );
    println!(
        "  JCT    median {:>8.3}s   p95 {:>8.3}s",
        m.jct_s.median(),
        m.jct_s.percentile(0.95)
    );
    println!(
        "  FCT    median {:>8.3}s   p95 {:>8.3}s",
        m.fct_s.median(),
        m.fct_s.percentile(0.95)
    );
    if !m.rit_ms.is_empty() {
        println!(
            "  RIT    median {:>8.3}ms  p95 {:>8.3}ms",
            m.rit_ms.median(),
            m.rit_ms.percentile(0.95)
        );
    }
}

fn main() {
    println!("Proactive TE on a k=8 fat tree (128 hosts), Facebook-style MapReduce jobs\n");
    run(SwitchKind::Ideal, "Ideal switches (zero control latency)");
    run(
        SwitchKind::Raw(SwitchModel::pica8_p3290()),
        "Raw Pica8 P-3290",
    );
    run(
        SwitchKind::Hermes(SwitchModel::pica8_p3290(), HermesConfig::default()),
        "Hermes on Pica8 P-3290 (5 ms guarantee)",
    );
}
