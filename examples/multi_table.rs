//! Multi-table pipelines (§6): independent guarantees per logical table.
//!
//! Modern switches chain several TCAM tables into a match-action pipeline.
//! Hermes carves *each* of them into a shadow/main pair, so an ACL table
//! that must absorb security rules in 2 ms can coexist with a routing
//! table on a relaxed 10 ms budget — on the same ASIC.
//!
//! ```sh
//! cargo run --example multi_table
//! ```

use hermes::core::config::HermesConfig;
use hermes::core::multitable::{MultiTableHermes, TableSpec};
use hermes::rules::prelude::*;
use hermes::tcam::{MissBehavior, SimDuration, SimTime, SwitchModel};

fn rule(id: u64, pfx: &str, prio: u32, action: Action) -> Rule {
    let p: Ipv4Prefix = pfx.parse().unwrap();
    Rule::new(id, p.to_key(), Priority(prio), action)
}

fn pkt(s: &str) -> u128 {
    let p: Ipv4Prefix = format!("{s}/32").parse().unwrap();
    (p.addr() as u128) << 96
}

fn main() {
    let model = SwitchModel::pica8_p3290();
    let mut pipeline = MultiTableHermes::new(
        model.clone(),
        vec![
            // Table 0: ACL. Tight 2 ms guarantee, passes unmatched traffic on.
            TableSpec {
                config: HermesConfig::with_guarantee(SimDuration::from_ms(2.0)),
                capacity_share: 0.25,
                miss: MissBehavior::GotoNextSlice,
            },
            // Table 1: routing. Relaxed 10 ms guarantee, punts on miss.
            TableSpec {
                config: HermesConfig::with_guarantee(SimDuration::from_ms(10.0)),
                capacity_share: 0.75,
                miss: MissBehavior::ToController,
            },
        ],
    )
    .expect("feasible pipeline");

    println!(
        "pipeline: {} logical tables on one {} ASIC",
        pipeline.table_count(),
        model.name
    );
    for i in 0..pipeline.table_count() {
        let t = pipeline.table(i);
        println!(
            "  table {i}: guarantee {} | shadow {} entries | admits {:.0} rules/s",
            t.config().guarantee,
            t.shadow_capacity(),
            t.max_supported_rate()
        );
    }
    println!(
        "total shadow overhead: {:.2}% of the ASIC\n",
        pipeline.overhead_fraction(&model) * 100.0
    );

    let now = SimTime::ZERO;
    // Security policy into the ACL table, a route into the routing table.
    let acl = pipeline
        .submit(
            0,
            &ControlAction::Insert(rule(1, "10.66.0.0/16", 100, Action::Drop)),
            now,
        )
        .unwrap();
    let route = pipeline
        .submit(
            1,
            &ControlAction::Insert(rule(2, "10.0.0.0/8", 10, Action::Forward(7))),
            now,
        )
        .unwrap();
    println!("ACL insert latency:     {} (bound 2ms)", acl.latency);
    println!("routing insert latency: {} (bound 10ms)\n", route.latency);

    // Pipeline semantics.
    for (who, addr) in [
        ("blocked host", "10.66.1.1"),
        ("normal host", "10.1.2.3"),
        ("unknown", "8.8.8.8"),
    ] {
        println!("{who:>14} {addr:>12} -> {:?}", pipeline.lookup(pkt(addr)));
    }
}
